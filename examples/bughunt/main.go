// Bughunt: inject the paper's §V case-study bug — two false-sharing
// write-throughs racing at the L2 so one write is lost — and watch the
// tester produce the Table V debugging report.
//
//	go run ./examples/bughunt
package main

import (
	"fmt"
	"os"

	"drftest"
)

func main() {
	// A contention-heavy configuration: few variables packed densely so
	// distinct variables collide in cache lines (false sharing), plus a
	// high store fraction — exactly how a designer would configure the
	// tester to chase a racing-write bug.
	cfg := drftest.DefaultTesterConfig()
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 48
	cfg.StoreFraction = 0.6

	for seed := uint64(1); seed <= 16; seed++ {
		cfg.Seed = seed

		k := drftest.NewKernel()
		sysCfg := drftest.SmallCaches()
		sysCfg.Bugs = drftest.BugSet{LostWriteRace: true}
		sys, _ := drftest.NewSystem(k, sysCfg)

		rep := drftest.NewTester(k, sys, cfg).Run()
		if rep.Passed() {
			continue
		}
		fmt.Printf("seed %d: bug detected after %d operations (%d simulated cycles)\n\n",
			seed, rep.OpsCompleted, rep.SimTicks)
		for _, f := range rep.Failures {
			fmt.Println(f.TableV())
		}
		fmt.Println("replay the identical failing run any time with the same seed.")
		return
	}
	fmt.Println("bug not provoked in 16 seeds — try a denser variable mapping")
	os.Exit(1)
}
