// Package drftest is an autonomous data-race-free (DRF) random testing
// framework for GPU cache coherence protocols under relaxed memory
// models, reproducing Ta, Zhang, Gutierrez and Beckmann, "Autonomous
// Data-Race-Free GPU Testing" (IISWC 2019) as a self-contained Go
// library.
//
// The package bundles everything the paper's methodology needs:
//
//   - a deterministic discrete-event simulation kernel;
//   - the GPU VIPER write-through coherence protocol (per-CU L1s under
//     a shared L2) expressed as explicit transition tables;
//   - a MOESI-style CPU protocol and a shared CPU–GPU–DMA directory
//     for heterogeneous systems;
//   - the DRF GPU tester itself: wavefronts of lockstep threads issue
//     episodes (atomic-acquire, race-free loads/stores, atomic-release)
//     whose responses are checked autonomously against a reference
//     memory — value consistency, atomic uniqueness, forward progress;
//   - a Wood-style CPU random tester;
//   - 26 synthetic application workloads with configurable cache-line
//     reuse profiles, run through a detailed GPU-core pipeline model;
//   - transition-coverage instrumentation and the harness regenerating
//     every table and figure of the paper's evaluation.
//
// Quick start:
//
//	res := drftest.RunGPUTester(drftest.SmallCaches(), drftest.DefaultTesterConfig())
//	if !res.Report.Passed() {
//	    fmt.Println(res.Report.Failures[0].TableV())
//	}
//	fmt.Printf("L1 %.1f%%  L2 %.1f%%\n", 100*res.L1.Coverage(), 100*res.L2.Coverage())
package drftest

import (
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/cputester"
	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// Re-exported configuration and result types. The implementation lives
// under internal/; these aliases are the supported public surface.
type (
	// TesterConfig parameterizes a GPU tester run (Table III knobs).
	TesterConfig = core.Config
	// TesterReport is a finished GPU tester run.
	TesterReport = core.Report
	// Failure is one detected coherence bug with Table V context.
	Failure = core.Failure
	// SystemConfig describes a VIPER GPU memory system.
	SystemConfig = viper.Config
	// BugSet selects injected protocol bugs for case studies.
	BugSet = viper.BugSet
	// CoverageSummary is a controller's transition-coverage numbers.
	CoverageSummary = coverage.Summary
	// CoverageMatrix is a controller's transition hit matrix.
	CoverageMatrix = coverage.Matrix
	// CPUTesterConfig parameterizes a CPU tester run.
	CPUTesterConfig = cputester.Config
	// CPUTesterReport is a finished CPU tester run.
	CPUTesterReport = cputester.Report
)

// DefaultTesterConfig returns a moderate GPU tester configuration.
func DefaultTesterConfig() TesterConfig { return core.DefaultConfig() }

// DefaultCaches returns the application-run GPU system (16KB L1,
// 256KB L2, 8 CUs).
func DefaultCaches() SystemConfig { return viper.DefaultConfig() }

// SmallCaches returns the replacement-stressing tester system (256B
// L1, 1KB L2).
func SmallCaches() SystemConfig { return viper.SmallCacheConfig() }

// LargeCaches returns the hit-stressing tester system (256KB L1, 1MB
// L2).
func LargeCaches() SystemConfig { return viper.LargeCacheConfig() }

// MixedCaches returns the small-L1/large-L2 tester system.
func MixedCaches() SystemConfig { return viper.MixedCacheConfig() }

// Result is a completed GPU tester run with its coverage.
type Result struct {
	Report   *TesterReport
	L1, L2   CoverageSummary
	L1Matrix *CoverageMatrix
	L2Matrix *CoverageMatrix
}

// RunGPUTester builds a GPU-only VIPER system, runs the DRF tester on
// it, and returns the report with L1/L2 transition coverage.
func RunGPUTester(sysCfg SystemConfig, cfg TesterConfig) *Result {
	r := harness.RunGPUTest(harness.GPUTestConfig{Name: "run", SysCfg: sysCfg, TestCfg: cfg})
	return &Result{
		Report:   r.Report,
		L1:       r.L1Sum,
		L2:       r.L2Sum,
		L1Matrix: r.L1,
		L2Matrix: r.L2,
	}
}

// CPUResult is a completed CPU tester run with its coverage.
type CPUResult struct {
	Report    *CPUTesterReport
	CPUL1     CoverageSummary
	Directory *CoverageMatrix
}

// RunCPUTester builds a CPU-only system (MOESI caches over the shared
// directory) and runs the Wood-style CPU tester on it.
func RunCPUTester(numCPUs int, cfg CPUTesterConfig) *CPUResult {
	b := harness.BuildCPU(numCPUs, harness.DefaultCPUCache)
	t := cputester.New(b.K, b.Caches, cfg)
	rep := t.Run()
	return &CPUResult{
		Report:    rep,
		CPUL1:     b.Col.Matrix("CPU-L1").Summarize(nil),
		Directory: b.Col.Matrix("Directory"),
	}
}

// HeteroResult is a GPU tester run over the heterogeneous system's
// shared directory.
type HeteroResult struct {
	Report    *TesterReport
	Directory *CoverageMatrix
}

// RunGPUTesterHetero runs the GPU tester with the VIPER L2 sitting on
// the shared CPU–GPU system directory, collecting the directory-side
// coverage the paper's Fig. 10(c) combines with the CPU tester's.
func RunGPUTesterHetero(sysCfg SystemConfig, cfg TesterConfig) *HeteroResult {
	rep, dir := harness.RunGPUTesterOnDirectory(harness.GPUTestConfig{Name: "hetero", SysCfg: sysCfg, TestCfg: cfg})
	return &HeteroResult{Report: rep, Directory: dir}
}

// DefaultCPUTesterConfig returns a moderate CPU tester configuration.
func DefaultCPUTesterConfig() CPUTesterConfig { return cputester.DefaultConfig() }

// NewTester gives full control: build your own system (e.g. with
// injected bugs) and attach the tester to it.
//
//	k := drftest.NewKernel()
//	sysCfg := drftest.SmallCaches()
//	sysCfg.Bugs = drftest.BugSet{LostWriteRace: true}
//	sys, col := drftest.NewSystem(k, sysCfg)
//	rep := drftest.NewTester(k, sys, drftest.DefaultTesterConfig()).Run()
//	_ = col
func NewTester(k *sim.Kernel, sys *viper.System, cfg TesterConfig) *core.Tester {
	return core.New(k, sys, cfg)
}

// RunMultiGPUTester runs one DRF tester spanning numGPUs identical
// GPUs over a shared system directory (§III.B's multi-GPU topology).
// Inter-GPU writes and atomics probe-invalidate the other GPUs' L2
// copies, so even the L2 probe transitions — Impossible in single-GPU
// systems — become coverable.
func RunMultiGPUTester(numGPUs int, sysCfg SystemConfig, cfg TesterConfig) *Result {
	b := harness.BuildMultiGPU(sysCfg, numGPUs)
	t := core.NewMulti(b.K, b.GPUs, cfg)
	t.Start()
	b.K.RunUntilIdle()
	t.Finish()
	t.AuditStore(b.Store)
	l1 := b.Col.Matrix("GPU-L1")
	l2 := b.Col.Matrix("GPU-L2")
	rep := &core.Report{Failures: t.Failures()}
	return &Result{
		Report:   rep,
		L1:       l1.Summarize(nil),
		L2:       l2.Summarize(harness.TCCImpossibleMultiGPU()),
		L1Matrix: l1,
		L2Matrix: l2,
	}
}

// CellSet names transition-table cells, e.g. for Impossible masks.
type CellSet = coverage.CellSet

// L2ImpossibleGPUOnly returns the GPU L2 cells unreachable in a
// GPU-only system (probe-invalidations and atomic NACKs need a
// directory with other clients); pass it to CoverageMatrix.Summarize
// so coverage is reported over reachable transitions, as the paper
// does.
func L2ImpossibleGPUOnly() CellSet { return harness.TCCImpossibleGPUOnly() }

// NewKernel returns a fresh deterministic event kernel.
func NewKernel() *sim.Kernel { return sim.NewKernel() }

// NewSystem builds a GPU-only VIPER system with coverage collection.
func NewSystem(k *sim.Kernel, cfg SystemConfig) (*viper.System, *coverage.Collector) {
	col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
	return viper.NewSystem(k, cfg, col), col
}
