#!/usr/bin/env bash
# smoke_daemon.sh — end-to-end smoke test of the distributed campaign
# control plane, exercising the real binaries the way an operator
# would:
#
#   1. start `gputester -serve` with no local workers and a
#      content-addressed artifact store,
#   2. attach two `gputester -worker` processes,
#   3. submit a bug-injected campaign via `gputester -daemon` and
#      check it reports failures with stored artifacts,
#   4. replay one stored artifact by hash prefix through
#      `replay -store` (with -bisect, writing the minimized artifact
#      back into the store),
#   5. SIGTERM the daemon and verify the graceful drain: final report
#      written, workers released, clean exits all around.
#
# Exits nonzero on any failed step. Used by CI's daemon-smoke job and
# runnable locally: scripts/smoke_daemon.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
store="$workdir/store"
reports="$workdir/reports"
addr="127.0.0.1:7199"
url="http://$addr"

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building =="
go build -o "$workdir/gputester" ./cmd/gputester
go build -o "$workdir/replay" ./cmd/replay

echo "== starting daemon (no local workers, store=$store) =="
"$workdir/gputester" -serve "$addr" -serve-workers -1 \
  -store "$store" -report-dir "$reports" -lease-timeout 30s &
daemon_pid=$!

for _ in $(seq 1 50); do
  curl -sf "$url/metrics" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "$url/metrics" >/dev/null || { echo "daemon never came up"; exit 1; }

echo "== attaching 2 worker processes =="
"$workdir/gputester" -worker "$url" &
w1=$!
"$workdir/gputester" -worker "$url" &
w2=$!

echo "== submitting bug-injected campaign =="
# The lostwrite campaign must fail (exit 1) and report stored artifacts.
set +e
"$workdir/gputester" -daemon "$url" -json \
  -bug lostwrite -wfs 6 -episodes 6 -actions 24 -syncvars 4 -datavars 64 \
  -seed 100 -batch 8 -saturate-k 0 -max-seeds 24 >"$workdir/report.json"
status=$?
set -e
[ "$status" -eq 1 ] || { echo "daemon campaign exit $status, want 1 (bugs found)"; exit 1; }

python3 - "$workdir/report.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["passed"] is False, "bug campaign passed"
assert r["seedsRun"] == 24, f'seedsRun {r["seedsRun"]}'
assert len(r["failures"]) > 0, "no failures reported"
missing = [f["seed"] for f in r["failures"] if "objects" not in f.get("artifact", "")]
assert not missing, f"failures without stored artifacts: {missing}"
print(f'  campaign OK: {r["seedsRun"]} seeds, {len(r["failures"])} failure records, artifacts stored')
EOF

echo "== metrics sanity =="
curl -sf "$url/metrics" | python3 -c '
import json, sys
m = json.load(sys.stdin)
assert m["seedsRun"] >= 24, m
assert m["batchesMerged"] >= 3, m
assert m["artifacts"] > 0, m
print("  metrics OK: seeds=%d batches=%d artifacts=%d workers=%d"
      % (m["seedsRun"], m["batchesMerged"], m["artifacts"], m["activeWorkers"]))'
curl -sf "$url/debug/pprof/cmdline" >/dev/null
echo "  pprof OK"

echo "== replaying a stored artifact by hash prefix =="
hash=$(python3 -c '
import json, sys
idx = json.load(open(sys.argv[1] + "/index.json"))
print(sorted(idx["objects"])[0])' "$store")
"$workdir/replay" -store "$store" -bisect "${hash:0:12}"
python3 - "$store" "$hash" <<'EOF'
import json, sys
idx = json.load(open(sys.argv[1] + "/index.json"))["objects"]
minimized = [h for h, m in idx.items() if m.get("minimizedFrom") == sys.argv[2]]
assert minimized, "no minimized artifact with provenance in the store"
print(f"  minimized artifact stored with provenance: {minimized[0][:12]}")
EOF

echo "== graceful shutdown (SIGTERM) =="
kill -TERM "$daemon_pid"
wait "$daemon_pid"
wait "$w1"; wait "$w2"
ls "$reports"/*.json >/dev/null || { echo "no final campaign report written"; exit 1; }
echo "  daemon drained, workers exited cleanly, report present"

echo "SMOKE OK"
