#!/usr/bin/env bash
# bench.sh — run the performance-gate benchmarks and emit a JSON
# summary (ns/op, allocs/op, B/op, and every custom metric such as
# memops/s) per benchmark.
#
# Usage:
#   scripts/bench.sh [-o out.json] [-t benchtime] [-b 'EventLoop|Speed_']
#
# The benchmark set defaults to the PR gate: the event-loop
# microbenchmarks (internal/sim), the end-to-end memops/s benchmarks
# (repo root), the hot-path microbenchmarks for the reference
# memory (internal/mem) and the verification engine
# (internal/checker), and the campaign fork / replay-bisection
# benchmarks (repo root). Everything go test prints still goes to
# stderr, so the JSON on -o (or stdout) stays machine-readable.
set -euo pipefail

out=""
benchtime="0.5s"
pattern='EventLoop|Speed_|StoreAccess|Checker|Campaign|Replay'
while getopts "o:t:b:" opt; do
  case "$opt" in
    o) out="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    b) pattern="$OPTARG" ;;
    *) echo "usage: $0 [-o out.json] [-t benchtime] [-b pattern]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./ ./internal/sim/ ./internal/mem/ ./internal/checker/ ./internal/campaignd/)
echo "$raw" >&2

# Record the core count: the campaignd worker-scaling gate only applies
# on hosts with enough CPUs for worker processes to actually run in
# parallel.
numcpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)

json=$(echo "$raw" | awk '
  /^goos:/    { goos = $2 }
  /^goarch:/  { goarch = $2 }
  /^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    iters = $2
    m = ""
    # fields come in (value, unit) pairs after the iteration count
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/"/, "", unit)
      if (m != "") m = m ","
      m = m sprintf("\"%s\":%s", unit, $i)
    }
    if (benches != "") benches = benches ","
    benches = benches sprintf("\"%s\":{\"iterations\":%s,%s}", name, iters, m)
  }
  END {
    printf "{\"goos\":\"%s\",\"goarch\":\"%s\",\"cpu\":\"%s\",\"numcpu\":%s,\"benchtime\":\"%s\",\"benchmarks\":{%s}}\n",
      goos, goarch, cpu, NUMCPU, BENCHTIME, benches
  }
' BENCHTIME="$benchtime" NUMCPU="$numcpu")

# pretty-print if a json formatter is around; otherwise emit raw
if command -v python3 >/dev/null 2>&1; then
  json=$(echo "$json" | python3 -m json.tool)
fi

if [ -n "$out" ]; then
  echo "$json" > "$out"
  echo "wrote $out" >&2
else
  echo "$json"
fi
