#!/usr/bin/env bash
# bench.sh — run the performance-gate benchmarks and emit a JSON
# summary (ns/op, allocs/op, B/op, and every custom metric such as
# memops/s) per benchmark.
#
# Usage:
#   scripts/bench.sh [-o out.json] [-t benchtime] [-b 'EventLoop|Speed_']
#   scripts/bench.sh -compare OLD.json NEW.json
#
# The benchmark set defaults to the PR gate: the event-loop
# microbenchmarks (internal/sim), the end-to-end memops/s benchmarks
# (repo root), the hot-path microbenchmarks for the reference
# memory (internal/mem) and the verification engine
# (internal/checker), the campaign fork / replay-bisection
# benchmarks (repo root), and the schedule-exploration benchmarks
# (internal/explore). Everything go test prints still goes to
# stderr, so the JSON on -o (or stdout) stays machine-readable.
#
# -compare renders a regression table between two summaries produced by
# this script (old → new, with % delta per metric). It is a trend
# report, not a gate: it always exits 0 so the hard floors stay where
# they are (the CI gate steps), while the full trajectory is visible in
# the job log.
set -euo pipefail

if [ "${1:-}" = "-compare" ]; then
  if [ $# -ne 3 ]; then
    echo "usage: $0 -compare OLD.json NEW.json" >&2
    exit 2
  fi
  python3 - "$2" "$3" <<'EOF'
import json, sys

old_path, new_path = sys.argv[1], sys.argv[2]
old = json.load(open(old_path))["benchmarks"]
new = json.load(open(new_path))["benchmarks"]

# The metrics worth trending, in display order. Lower is better unless
# flagged; anything else a benchmark reports rides along at the end.
known = [
    ("ns/op", False), ("B/op", False), ("allocs/op", False),
    ("memops/s", True), ("seeds/sec", True), ("events/memop", False),
    ("schedules/sec", True), ("prune-ratio", False), ("violations", False),
]
rows = []
for name in sorted(set(old) | set(new)):
    o, n = old.get(name), new.get(name)
    if o is None or n is None:
        rows.append((name, "(only in %s)" % ("new" if o is None else "old"), "", "", ""))
        continue
    units = [u for u, _ in known if u in o and u in n]
    units += sorted(u for u in o if u in n and u != "iterations"
                    and u not in [k for k, _ in known])
    for u in units:
        ov, nv = float(o[u]), float(n[u])
        pct = None if ov == 0 else (nv - ov) / ov * 100.0
        delta = "n/a" if pct is None else "%+.1f%%" % pct
        higher = dict(known).get(u, False)
        better = (nv > ov) if higher else (nv < ov)
        # Only call out moves >1% — below that is noise, not trajectory.
        mark = "" if pct is None or abs(pct) < 1.0 else ("improved" if better else "REGRESSED")
        rows.append((name, u, "%.4g" % ov, "%.4g" % nv, "%s %s" % (delta, mark) if mark else delta))

w = [max(len(r[i]) for r in rows + [("benchmark", "metric", "old", "new", "delta")]) for i in range(5)]
hdr = ("benchmark", "metric", "old", "new", "delta")
print("comparing %s -> %s" % (old_path, new_path))
print("  ".join(h.ljust(w[i]) for i, h in enumerate(hdr)))
print("  ".join("-" * w[i] for i in range(5)))
for r in rows:
    print("  ".join(r[i].ljust(w[i]) for i in range(5)))
EOF
  exit 0
fi

out=""
benchtime="0.5s"
pattern='EventLoop|Speed_|StoreAccess|Checker|Campaign|Replay|Explore'
while getopts "o:t:b:" opt; do
  case "$opt" in
    o) out="$OPTARG" ;;
    t) benchtime="$OPTARG" ;;
    b) pattern="$OPTARG" ;;
    *) echo "usage: $0 [-o out.json] [-t benchtime] [-b pattern]" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem ./ ./internal/sim/ ./internal/mem/ ./internal/checker/ ./internal/campaignd/ ./internal/explore/)
echo "$raw" >&2

# Record the core count: the campaignd worker-scaling gate only applies
# on hosts with enough CPUs for worker processes to actually run in
# parallel.
numcpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 0)

json=$(echo "$raw" | awk '
  /^goos:/    { goos = $2 }
  /^goarch:/  { goarch = $2 }
  /^cpu:/     { sub(/^cpu: /, ""); cpu = $0 }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    iters = $2
    m = ""
    # fields come in (value, unit) pairs after the iteration count
    for (i = 3; i + 1 <= NF; i += 2) {
      unit = $(i + 1)
      gsub(/"/, "", unit)
      if (m != "") m = m ","
      m = m sprintf("\"%s\":%s", unit, $i)
    }
    if (benches != "") benches = benches ","
    benches = benches sprintf("\"%s\":{\"iterations\":%s,%s}", name, iters, m)
  }
  END {
    printf "{\"goos\":\"%s\",\"goarch\":\"%s\",\"cpu\":\"%s\",\"numcpu\":%s,\"benchtime\":\"%s\",\"benchmarks\":{%s}}\n",
      goos, goarch, cpu, NUMCPU, BENCHTIME, benches
  }
' BENCHTIME="$benchtime" NUMCPU="$numcpu")

# pretty-print if a json formatter is around; otherwise emit raw
if command -v python3 >/dev/null 2>&1; then
  json=$(echo "$json" | python3 -m json.tool)
fi

if [ -n "$out" ]; then
  echo "$json" > "$out"
  echo "wrote $out" >&2
else
  echo "$json"
fi
