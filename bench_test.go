// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md carries the experiment index). Each benchmark
// reports, beyond ns/op, the quantities the paper plots: coverage
// percentages, simulated events, and memory operations per second —
// so `go test -bench=. -benchmem` reproduces the evaluation's shape.
package drftest_test

import (
	"io"
	"testing"

	"drftest"
	"drftest/internal/apps"
	"drftest/internal/checker"
	"drftest/internal/core"
	"drftest/internal/harness"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

// benchScale keeps one benchmark iteration in the tens-of-milliseconds
// range; cmd/figures runs the same experiments at full length.
const benchScale = 0.1

// BenchmarkTableI_L1Events and BenchmarkTableII_L2Events render the
// event vocabularies (Tables I and II).
func BenchmarkTableI_L1Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTableI(io.Discard)
	}
}

func BenchmarkTableII_L2Events(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTableII(io.Discard)
	}
}

// BenchmarkTableIII_ConfigSpace builds the 24+24 tester configurations.
func BenchmarkTableIII_ConfigSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(harness.GPUTesterConfigs(1, 1))+len(harness.CPUTesterConfigs(1, 1)) != 48 {
			b.Fatal("config space changed")
		}
	}
}

// BenchmarkTableIV_Applications renders the application suite table.
func BenchmarkTableIV_Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderTableIV(io.Discard)
	}
}

// BenchmarkFig4_TransitionTables renders both VIPER tables.
func BenchmarkFig4_TransitionTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.RenderFig4(io.Discard)
	}
}

// BenchmarkFig5_HeatmapSmall / Large run the tester under the two
// cache sizings of Fig. 5 and report coverage.
func BenchmarkFig5_HeatmapSmall(b *testing.B) {
	benchTesterRun(b, 0)
}

func BenchmarkFig5_HeatmapLarge(b *testing.B) {
	benchTesterRun(b, 8)
}

func benchTesterRun(b *testing.B, cfgIdx int) {
	b.Helper()
	var last *harness.GPURunResult
	for i := 0; i < b.N; i++ {
		cfgs := harness.GPUTesterConfigs(uint64(i)+1, benchScale)
		last = harness.RunGPUTest(cfgs[cfgIdx])
		if !last.Report.Passed() {
			b.Fatalf("tester failed: %v", last.Report.Failures[0])
		}
	}
	b.ReportMetric(100*last.L1Sum.Coverage(), "L1cov%")
	b.ReportMetric(100*last.L2Sum.Coverage(), "L2cov%")
	b.ReportMetric(float64(last.Report.OpsIssued), "memops")
}

// BenchmarkFig6_Locality profiles one streaming and one contended
// application's reuse mix.
func BenchmarkFig6_Locality(b *testing.B) {
	var res *harness.AppSuiteResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAppSuite(harness.AppSuiteOptions{
			Seed: uint64(i) + 1, Scale: benchScale, NumWFs: 8,
			Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("CM")},
		})
		if res.Faults != 0 {
			b.Fatal("protocol faults")
		}
	}
	b.ReportMetric(100*res.Runs[0].Res.Locality[apps.ClassStreaming], "Square.streaming%")
	b.ReportMetric(100*res.Runs[1].Res.Locality[apps.ClassMixWF], "CM.mixWF%")
}

// BenchmarkFig7_ClassGrids produces the tester-vs-apps classification
// grids.
func BenchmarkFig7_ClassGrids(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep := harness.RunGPUSweep(harness.GPUTesterConfigs(uint64(i)+1, benchScale)[:4])
		appsRes := harness.RunAppSuite(harness.AppSuiteOptions{
			Seed: uint64(i) + 1, Scale: benchScale, NumWFs: 8,
			Profiles: []apps.Profile{*apps.ByName("FFT"), *apps.ByName("Interac")},
		})
		harness.RenderFig7(io.Discard, sweep, appsRes)
	}
}

// BenchmarkFig8_TesterSweep runs a slice of the Table III sweep and
// reports union coverage — the per-run and UNION rows of Fig. 8.
func BenchmarkFig8_TesterSweep(b *testing.B) {
	var sweep *harness.GPUSweepResult
	for i := 0; i < b.N; i++ {
		sweep = harness.RunGPUSweep(harness.GPUTesterConfigs(uint64(i)+1, benchScale)[:8])
		if sweep.Failures != 0 {
			b.Fatal("tester failures")
		}
	}
	b.ReportMetric(100*sweep.UnionL1Sum.Coverage(), "unionL1cov%")
	b.ReportMetric(100*sweep.UnionL2Sum.Coverage(), "unionL2cov%")
	b.ReportMetric(float64(sweep.TotalEvents), "simevents")
}

// BenchmarkFig9_AppSweep runs a slice of the application suite and
// reports union coverage — Fig. 9's rows.
func BenchmarkFig9_AppSweep(b *testing.B) {
	var res *harness.AppSuiteResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAppSuite(harness.AppSuiteOptions{
			Seed: uint64(i) + 1, Scale: benchScale, NumWFs: 8,
			Profiles: apps.Profiles[:6],
		})
		if res.Faults != 0 {
			b.Fatal("protocol faults")
		}
	}
	b.ReportMetric(100*res.UnionL1Sum.Coverage(), "unionL1cov%")
	b.ReportMetric(100*res.UnionL2Sum.Coverage(), "unionL2cov%")
	b.ReportMetric(float64(res.TotalEvents), "simevents")
}

// BenchmarkFig10_Directory reproduces the directory comparison: GPU
// tester + CPU tester union versus application coverage.
func BenchmarkFig10_Directory(b *testing.B) {
	var union, appsSum float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		_, gpuDir := harness.RunGPUTesterOnDirectory(harness.GPUTesterConfigs(seed, benchScale)[0])
		cpuRes := harness.RunCPUSweep(harness.CPUTesterConfigs(seed, 0.01)[:6])
		u := gpuDir.Clone()
		u.Merge(cpuRes.UnionDir)
		appsRes := harness.RunAppSuite(harness.AppSuiteOptions{
			Seed: seed, Scale: benchScale, NumWFs: 8,
			Profiles: []apps.Profile{*apps.ByName("Square"), *apps.ByName("Interac")},
		})
		union = 100 * u.Summarize(nil).Coverage()
		appsSum = 100 * appsRes.UnionDirSum.Coverage()
	}
	b.ReportMetric(union, "testersUnion%")
	b.ReportMetric(appsSum, "apps%")
}

// BenchmarkTableV_BugReport measures time-to-detection of the
// lost-write race, the paper's Table V bug.
func BenchmarkTableV_BugReport(b *testing.B) {
	benchCaseStudy(b, drftest.BugSet{LostWriteRace: true}, 0)
}

// BenchmarkCaseStudy_* measure time-to-detection for the other §V bug
// classes.
func BenchmarkCaseStudy_NonAtomicRMW(b *testing.B) {
	benchCaseStudy(b, drftest.BugSet{NonAtomicRMW: true}, 0)
}

func BenchmarkCaseStudy_DroppedWBAck(b *testing.B) {
	benchCaseStudy(b, drftest.BugSet{DropWBAckEvery: 20}, 20_000)
}

func BenchmarkCaseStudy_StaleAcquire(b *testing.B) {
	benchCaseStudy(b, drftest.BugSet{StaleAcquire: true}, 0)
}

func benchCaseStudy(b *testing.B, bugs drftest.BugSet, deadlock uint64) {
	b.Helper()
	detected := 0
	var ticksToDetect float64
	for i := 0; i < b.N; i++ {
		for seed := uint64(1); seed <= 8; seed++ {
			k := sim.NewKernel()
			sysCfg := viper.SmallCacheConfig()
			sysCfg.Bugs = bugs
			sys := viper.NewSystem(k, sysCfg, nil)
			cfg := core.DefaultConfig()
			cfg.Seed = seed + uint64(i)*8
			cfg.NumWavefronts = 8
			cfg.EpisodesPerThread = 8
			cfg.ActionsPerEpisode = 30
			cfg.NumSyncVars = 4
			cfg.NumDataVars = 48
			cfg.StoreFraction = 0.6
			if deadlock != 0 {
				cfg.DeadlockThreshold = deadlock
				cfg.CheckPeriod = sim.Tick(deadlock / 4)
			}
			rep := core.New(k, sys, cfg).Run()
			if !rep.Passed() {
				detected++
				ticksToDetect += float64(rep.Failures[0].Tick)
				break
			}
		}
	}
	if detected == 0 {
		b.Fatal("injected bug never detected")
	}
	b.ReportMetric(ticksToDetect/float64(detected), "ticks-to-detect")
}

// BenchmarkSpeed_TesterPerMemOp and BenchmarkSpeed_AppPerMemOp back
// the ">50x faster" claim: simulation cost per memory operation with
// and without the detailed GPU core model.
func BenchmarkSpeed_TesterPerMemOp(b *testing.B) {
	cfgs := harness.GPUTesterConfigs(1, benchScale)
	var ops, events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := harness.RunGPUTest(cfgs[0])
		ops += r.Report.OpsIssued
		events += r.Report.EventsExecuted
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/float64(ops), "events/memop")
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "memops/s")
}

func BenchmarkSpeed_AppPerMemOp(b *testing.B) {
	var ops, events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := harness.RunAppSuite(harness.AppSuiteOptions{
			Seed: uint64(i) + 1, Scale: benchScale, NumWFs: 8,
			Profiles: []apps.Profile{*apps.ByName("MatMul")},
		})
		ops += res.Runs[0].Res.MemOps
		events += res.Runs[0].Res.Events
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/float64(ops), "events/memop")
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "memops/s")
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

// BenchmarkAblation_FalseSharingMapping quantifies the dense random
// variable→address mapping: time-to-detect the lost-write race with
// and without false sharing.
func BenchmarkAblation_FalseSharingMapping(b *testing.B) {
	run := func(padded bool) (detected int) {
		for seed := uint64(1); seed <= 6; seed++ {
			k := sim.NewKernel()
			sysCfg := viper.SmallCacheConfig()
			sysCfg.Bugs = viper.BugSet{LostWriteRace: true}
			sys := viper.NewSystem(k, sysCfg, nil)
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			cfg.NumWavefronts = 8
			cfg.EpisodesPerThread = 8
			cfg.ActionsPerEpisode = 30
			cfg.NumSyncVars = 4
			cfg.NumDataVars = 48
			cfg.StoreFraction = 0.6
			if padded {
				cfg.AddressRangeBytes = uint64(cfg.NumSyncVars+cfg.NumDataVars) * 64 * 4
			}
			if rep := core.New(k, sys, cfg).Run(); !rep.Passed() {
				detected++
			}
		}
		return detected
	}
	var dense, padded int
	for i := 0; i < b.N; i++ {
		dense = run(false)
		padded = run(true)
	}
	b.ReportMetric(float64(dense), "dense-detections/6")
	b.ReportMetric(float64(padded), "padded-detections/6")
}

// BenchmarkAblation_EpisodeLength measures coverage per issued op for
// short vs long episodes.
func BenchmarkAblation_EpisodeLength(b *testing.B) {
	run := func(actions int) (cov float64) {
		cfgs := harness.GPUTesterConfigs(1, benchScale)
		cfg := cfgs[0]
		cfg.TestCfg.ActionsPerEpisode = actions
		r := harness.RunGPUTest(cfg)
		return 100 * r.L2Sum.Coverage()
	}
	var short, long float64
	for i := 0; i < b.N; i++ {
		short = run(6)
		long = run(60)
	}
	b.ReportMetric(short, "L2cov%@6acts")
	b.ReportMetric(long, "L2cov%@60acts")
}

// BenchmarkAblation_BankedL2 measures the tester over 1 vs 4 L2
// slices: the methodology is topology-independent (§III.B).
func BenchmarkAblation_BankedL2(b *testing.B) {
	run := func(slices int) float64 {
		sysCfg := viper.SmallCacheConfig()
		sysCfg.NumL2Slices = slices
		bld := harness.BuildGPU(sysCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = 11
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 4
		cfg.ActionsPerEpisode = 40
		rep := core.New(bld.K, bld.Sys, cfg).Run()
		if !rep.Passed() {
			b.Fatal("tester failed on banked topology")
		}
		return 100 * bld.Col.Matrix("GPU-L2").Summarize(harness.TCCImpossibleGPUOnly()).Coverage()
	}
	var one, four float64
	for i := 0; i < b.N; i++ {
		one = run(1)
		four = run(4)
	}
	b.ReportMetric(one, "L2cov%@1slice")
	b.ReportMetric(four, "L2cov%@4slices")
}

// BenchmarkExtension_MultiGPU runs the tester over two GPUs sharing a
// directory and reports L2 coverage including the inter-GPU probe row.
func BenchmarkExtension_MultiGPU(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		sysCfg := viper.SmallCacheConfig()
		sysCfg.NumCUs = 4
		bld := harness.BuildMultiGPU(sysCfg, 2)
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(i) + 3
		cfg.NumWavefronts = 16
		cfg.EpisodesPerThread = 6
		cfg.ActionsPerEpisode = 40
		cfg.NumSyncVars = 8
		cfg.NumDataVars = 256
		tester := core.NewMulti(bld.K, bld.GPUs, cfg)
		tester.Start()
		bld.K.RunUntilIdle()
		tester.Finish()
		tester.AuditStore(bld.Store)
		if len(tester.Failures()) > 0 {
			b.Fatalf("multi-GPU tester failed: %v", tester.Failures()[0])
		}
		cov = 100 * bld.Col.Matrix("GPU-L2").Summarize(harness.TCCImpossibleMultiGPU()).Coverage()
	}
	b.ReportMetric(cov, "L2cov%")
}

// BenchmarkExtension_WriteBackProtocol runs the unchanged tester over
// the VIPER-WB variant.
func BenchmarkExtension_WriteBackProtocol(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		sysCfg := viper.SmallCacheConfig()
		sysCfg.WriteBackL2 = true
		bld := harness.BuildGPU(sysCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = uint64(i) + 1
		cfg.NumWavefronts = 16
		cfg.EpisodesPerThread = 6
		cfg.ActionsPerEpisode = 40
		cfg.NumSyncVars = 8
		cfg.NumDataVars = 512
		rep := core.New(bld.K, bld.Sys, cfg).Run()
		if !rep.Passed() {
			b.Fatalf("WB tester failed: %v", rep.Failures[0])
		}
		cov = 100 * bld.Col.Matrix("GPU-L2WB").Summarize(harness.TCCWBImpossible()).Coverage()
	}
	b.ReportMetric(cov, "L2WBcov%")
}

// BenchmarkProtocolPerf_WTvsWB measures the same workload on both
// protocols — the "quickly evaluate new protocol ideas" use case the
// paper's conclusion motivates.
func BenchmarkProtocolPerf_WTvsWB(b *testing.B) {
	prof := *apps.ByName("CM")
	prof.MemOpsPerLane = 100
	run := func(wb bool, seed uint64) uint64 {
		sysCfg := viper.DefaultConfig()
		sysCfg.WriteBackL2 = wb
		k := sim.NewKernel()
		sys := viper.NewSystem(k, sysCfg, nil)
		res := apps.Run(k, sys, prof, seed, 16, 4, 0)
		if !res.Completed || res.Faults != 0 {
			b.Fatal("run did not complete cleanly")
		}
		return res.SimTicks
	}
	var wt, wb uint64
	for i := 0; i < b.N; i++ {
		wt = run(false, uint64(i)+1)
		wb = run(true, uint64(i)+1)
	}
	b.ReportMetric(float64(wt), "WT-simticks")
	b.ReportMetric(float64(wb), "WB-simticks")
	b.ReportMetric(float64(wt)/float64(wb), "WB-speedup")
}

// BenchmarkCampaignReuse / BenchmarkCampaignRebuild measure the
// campaign engine's seed throughput with reusable run contexts (reset
// per seed) against the rebuild baseline (fresh system per seed). The
// configuration is paper-scale on the address-space axis — tens of
// thousands of variables, as in Table III — which is exactly where
// per-seed reconstruction hurts: the variable slab, reference memory
// and cache arrays dwarf the work of one short run.
func BenchmarkCampaignReuse(b *testing.B)   { benchCampaign(b, false) }
func BenchmarkCampaignRebuild(b *testing.B) { benchCampaign(b, true) }

func benchCampaign(b *testing.B, rebuild bool) {
	b.Helper()
	testCfg := core.DefaultConfig()
	testCfg.NumWavefronts = 8
	testCfg.EpisodesPerThread = 1
	testCfg.ActionsPerEpisode = 8
	testCfg.NumSyncVars = 16
	testCfg.NumDataVars = 100_000
	seeds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := harness.RunGPUCampaign(harness.CampaignConfig{
			SysCfg:    viper.SmallCacheConfig(),
			TestCfg:   testCfg,
			BaseSeed:  uint64(i)*1000 + 1,
			BatchSize: 8,
			MaxSeeds:  32,
			Rebuild:   rebuild,
		})
		if len(res.Failures) != 0 {
			b.Fatalf("campaign failed: seed %d: %v", res.Failures[0].Seed, res.Failures[0].Failures[0])
		}
		seeds += res.SeedsRun
	}
	b.StopTimer()
	b.ReportMetric(float64(seeds)/b.Elapsed().Seconds(), "seeds/sec")
}

// BenchmarkCampaignModeUniform / Swarm / Directed compare the three
// campaign sampling policies on identical budgets: how many union
// cells each has active when it saturates (cells-at-saturation) and
// how many seeds it needed to activate the last of them
// (seeds-to-saturation). Uniform plateaus below the swarm modes — the
// base configuration provably cannot reach the replacement and A-row
// stall cells the configuration corners buy — and directed's feedback
// reaches full coverage in fewer seeds than blind swarm sampling.
// These two metrics are the PR gate recorded in BENCH_PR6.json.
func BenchmarkCampaignModeUniform(b *testing.B)  { benchCampaignMode(b, harness.CampaignUniform) }
func BenchmarkCampaignModeSwarm(b *testing.B)    { benchCampaignMode(b, harness.CampaignSwarm) }
func BenchmarkCampaignModeDirected(b *testing.B) { benchCampaignMode(b, harness.CampaignDirected) }

func benchCampaignMode(b *testing.B, mode harness.CampaignMode) {
	b.Helper()
	testCfg := core.DefaultConfig()
	testCfg.NumWavefronts = 8
	testCfg.EpisodesPerThread = 8
	testCfg.ActionsPerEpisode = 30
	testCfg.NumSyncVars = 4
	testCfg.NumDataVars = 64
	testCfg.StoreFraction = 0.6
	var last *harness.CampaignResult
	seeds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = harness.RunGPUCampaign(harness.CampaignConfig{
			SysCfg:    viper.SmallCacheConfig(),
			TestCfg:   testCfg,
			BaseSeed:  1,
			BatchSize: 8,
			SaturateK: 8,
			MaxSeeds:  512,
			Mode:      mode,
		})
		if len(last.Failures) != 0 {
			b.Fatalf("campaign failed: seed %d: %v", last.Failures[0].Seed, last.Failures[0].Failures[0])
		}
		seeds += last.SeedsRun
	}
	b.StopTimer()
	b.ReportMetric(float64(seeds)/b.Elapsed().Seconds(), "seeds/sec")
	b.ReportMetric(float64(last.CellsAtSaturation), "cells-at-saturation")
	b.ReportMetric(float64(last.SeedsToSaturation), "seeds-to-saturation")
}

// BenchmarkAxiomaticChecker measures the offline verifier's throughput
// over a recorded correct execution.
func BenchmarkAxiomaticChecker(b *testing.B) {
	bld := harness.BuildGPU(viper.SmallCacheConfig())
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.NumWavefronts = 16
	cfg.EpisodesPerThread = 10
	cfg.ActionsPerEpisode = 50
	cfg.NumDataVars = 1024
	cfg.RecordTrace = true
	rep := core.New(bld.K, bld.Sys, cfg).Run()
	if !rep.Passed() {
		b.Fatal("correct run failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := checker.Verify(rep.Trace); len(vs) != 0 {
			b.Fatalf("checker flagged a correct trace: %v", vs[0])
		}
	}
	b.ReportMetric(float64(len(rep.Trace.Ops)), "trace-ops")
}

// BenchmarkCampaignForkLargeCache / ResetLargeCache measure the
// warm-fork fast path against the per-seed reset path in the regime
// forking exists for: large cache arrays (the paper's 256KB/1MB
// "large" configuration) under short runs, where System.Reset's
// O(capacity) invalidation scans dwarf the touched-state journal a
// fork unwinds. The fork/reset seeds-per-second ratio is a CI floor
// (>= 1.3x) recorded in BENCH_PR7.json.
func BenchmarkCampaignForkLargeCache(b *testing.B)  { benchForkCampaign(b, true) }
func BenchmarkCampaignResetLargeCache(b *testing.B) { benchForkCampaign(b, false) }

func benchForkCampaign(b *testing.B, fork bool) {
	b.Helper()
	testCfg := core.DefaultConfig()
	testCfg.NumWavefronts = 2
	testCfg.EpisodesPerThread = 1
	testCfg.ActionsPerEpisode = 4
	testCfg.NumSyncVars = 2
	testCfg.NumDataVars = 256
	seeds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := harness.RunGPUCampaign(harness.CampaignConfig{
			SysCfg:    viper.LargeCacheConfig(),
			TestCfg:   testCfg,
			BaseSeed:  uint64(i)*1000 + 1,
			Workers:   2,
			BatchSize: 32,
			MaxSeeds:  128,
			Fork:      fork,
		})
		if len(res.Failures) != 0 {
			b.Fatalf("campaign failed: seed %d: %v", res.Failures[0].Seed, res.Failures[0].Failures[0])
		}
		seeds += res.SeedsRun
	}
	b.StopTimer()
	b.ReportMetric(float64(seeds)/b.Elapsed().Seconds(), "seeds/sec")
}

// goldenArtifact loads the repo's reference failing artifact (the one
// TestGoldenArtifactReplay pins), the common subject for the replay
// benchmarks.
func goldenArtifact(b *testing.B) *harness.Artifact {
	b.Helper()
	a, err := harness.LoadArtifact("internal/harness/testdata/replay-gpu-seed5-tick1263.json")
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkReplayFull measures a complete artifact reproduction — the
// baseline a bisection probe is gated against.
func BenchmarkReplayFull(b *testing.B) {
	art := goldenArtifact(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayed, err := harness.Replay(art)
		if err == nil {
			err = harness.CheckReproduced(art, replayed)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayBisectProbe measures the repeatable phase of a
// bisection — restore the bracketing checkpoint, single-step to the
// flip — against checkpoints recorded once outside the timer. This is
// the cost of re-asking "where does it first fail?" (or of bisecting
// a different predicate) once a run has been checkpointed; the CI
// floor requires it <= 0.5x BenchmarkReplayFull.
func BenchmarkReplayBisectProbe(b *testing.B) {
	art := goldenArtifact(b)
	pass, err := harness.NewBisectPass(art, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pass.Probe()
		if err != nil {
			b.Fatal(err)
		}
		if res.FirstFailingTick == 0 || res.FirstFailingTick > res.ReportedTick {
			b.Fatalf("bisected tick %d outside (0, %d]", res.FirstFailingTick, res.ReportedTick)
		}
	}
}
