// Command gputester runs the autonomous DRF GPU tester against a
// VIPER memory system, the core workflow of the paper.
//
// Usage:
//
//	gputester [-caches small|large|mixed|default] [-cus 8]
//	          [-wfs 16] [-lanes 4] [-episodes 10] [-actions 100]
//	          [-syncvars 10] [-datavars 100000] [-seed 1]
//	          [-bug lostwrite|nonatomic|dropack|staleacquire]
//	          [-artifact-dir DIR] [-trace-depth 4096]
//	          [-heatmap] [-grid] [-v]
//	          [-campaign] [-campaign-mode uniform|swarm|directed]
//	          [-saturate-k 3] [-max-seeds 1024]
//	          [-batch 16] [-workers 0] [-campaign-rebuild]
//	          [-campaign-fork]
//	gputester -serve ADDR [-serve-workers N] [-store DIR]
//	          [-report-dir DIR] [-lease-timeout 60s] [-drain-timeout 30s]
//	gputester -worker URL [-worker-slots N]
//	gputester -daemon URL [campaign flags] [-lease-seeds N]
//	gputester -explore [-explore-depth D] [-explore-budget N]
//	          [-explore-naive] [workload flags] [-artifact-dir DIR]
//
// With -artifact-dir set the run records a bounded execution trace
// and, on any checker failure, serializes a replay artifact (JSON)
// into the directory; `replay <artifact>` re-executes it and asserts
// the failure reproduces bit-identically. The same flags apply to
// campaigns: every failing seed writes its own artifact.
//
// With -campaign the tester runs a coverage-saturation campaign
// instead of a single seed: seeds -seed, -seed+1, ... execute on a
// pool of reusable run contexts until -saturate-k consecutive batches
// of -batch seeds add no new transition coverage (or -max-seeds is
// reached). -campaign-mode selects how batches draw their test
// configuration: uniform repeats the base config, swarm deals every
// batch a random configuration corner, and directed biases corner
// sampling toward corners whose recent batches activated cold
// coverage cells. All three modes are independent of -workers.
// -campaign-fork runs each seed by restoring the system from a warm
// snapshot (copy-on-write journals) instead of Reset-scanning it —
// same outcomes, higher seeds/sec on large cache configurations.
//
// With -explore the tester runs bounded exhaustive schedule
// exploration (internal/explore) instead of a single random schedule:
// every interleaving of co-enabled coherence events is enumerated up to
// -explore-depth branching choice points per schedule (DPOR-style
// sleep-set pruning on by default; -explore-naive disables it), and the
// streaming axiomatic checker asserts every schedule. Exploration is
// only tractable for small configs — think 2-4 wavefronts and a handful
// of variables. A violating schedule is serialized into the replay
// artifact's `schedule` field, which `replay` re-executes
// bit-identically. -explore is mutually exclusive with the campaign and
// daemon modes.
//
// The three daemon modes distribute campaigns across processes
// (internal/campaignd): -serve runs the control-plane daemon (HTTP
// API, local worker pool, content-addressed artifact store); -worker
// connects a worker process that long-polls the daemon for seed
// leases; -daemon submits the campaign described by the usual campaign
// flags to a running daemon and waits for its report. A distributed
// campaign's outcome is byte-identical to the local -campaign path for
// the same spec. SIGINT/SIGTERM drain the daemon gracefully: in-flight
// batches finish (leases from dead workers requeue), final reports are
// written, then workers are released.
//
// Exit status is 0 when the protocol passes, 1 when bugs are detected.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"drftest/internal/checker"

	"drftest/internal/campaignd"
	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/explore"
	"drftest/internal/harness"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

// validateFlags rejects contradictory flag combinations up front with
// a one-line error, before any configuration or run state is built.
// The run modes (-explore, -campaign, -serve, -worker, -daemon) are
// pairwise mutually exclusive, as are the campaign context strategies
// -campaign-fork and -campaign-rebuild.
func validateFlags(exploreMode, campaign bool, serve, workerURL, daemonURL string, campaignFork, campaignRebuild bool) error {
	var modes []string
	if exploreMode {
		modes = append(modes, "-explore")
	}
	if campaign {
		modes = append(modes, "-campaign")
	}
	if serve != "" {
		modes = append(modes, "-serve")
	}
	if workerURL != "" {
		modes = append(modes, "-worker")
	}
	if daemonURL != "" {
		modes = append(modes, "-daemon")
	}
	if len(modes) > 1 {
		return fmt.Errorf("%s are mutually exclusive run modes; pick one", strings.Join(modes, " and "))
	}
	if campaignFork && campaignRebuild {
		return fmt.Errorf("-campaign-fork and -campaign-rebuild are mutually exclusive")
	}
	return nil
}

func main() {
	caches := flag.String("caches", "small", "cache sizing: small|large|mixed|default")
	protocolName := flag.String("protocol", "wt", "L2 protocol: wt (write-through VIPER) | wb (write-back VIPER-WB)")
	slices := flag.Int("l2slices", 1, "number of banked L2 slices")
	cus := flag.Int("cus", 8, "number of compute units")
	wfs := flag.Int("wfs", 16, "number of wavefronts")
	lanes := flag.Int("lanes", 4, "threads per wavefront (lockstep lanes)")
	episodes := flag.Int("episodes", 10, "episodes per wavefront thread")
	actions := flag.Int("actions", 100, "actions per episode (incl. acquire/release)")
	syncVars := flag.Int("syncvars", 10, "synchronization (atomic) locations")
	dataVars := flag.Int("datavars", 100_000, "regular data locations")
	seed := flag.Uint64("seed", 1, "random seed (same seed = identical run)")
	bug := flag.String("bug", "", "inject a protocol bug: lostwrite|nonatomic|dropack|staleacquire")
	heatmap := flag.Bool("heatmap", false, "print transition hit-frequency heat maps")
	grid := flag.Bool("grid", false, "print transition classification grids")
	verbose := flag.Bool("v", false, "print request latencies and the transaction log tail")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	axioms := flag.Bool("axiomcheck", false, "record the full trace and re-verify it with the independent axiomatic checker")
	artifactDir := flag.String("artifact-dir", "", "write a failure-replay artifact (JSON) into this directory on any detected bug")
	traceDepth := flag.Int("trace-depth", harness.DefaultTraceCapacity, "execution-trace ring capacity used with -artifact-dir")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	campaign := flag.Bool("campaign", false, "run a coverage-saturation campaign over seeds seed, seed+1, ...")
	campaignMode := flag.String("campaign-mode", "uniform", "campaign: config sampling policy: uniform|swarm|directed")
	saturateK := flag.Int("saturate-k", 3, "campaign: stop after this many consecutive batches with no new coverage (0 = run exactly max-seeds)")
	maxSeeds := flag.Int("max-seeds", harness.DefaultCampaignMaxSeeds, "campaign: hard cap on seeds run")
	batch := flag.Int("batch", 16, "campaign: seeds per batch between coverage merges")
	workers := flag.Int("workers", 0, "campaign: worker pool size (0 = GOMAXPROCS); does not affect the outcome")
	campaignRebuild := flag.Bool("campaign-rebuild", false, "campaign: rebuild the system for every seed instead of reusing run contexts (baseline mode)")
	campaignFork := flag.Bool("campaign-fork", false, "campaign: fork seeds from a warm system snapshot instead of Reset-scanning reused contexts (fast path)")
	serve := flag.String("serve", "", "run the campaign control-plane daemon on this address (e.g. 127.0.0.1:7077)")
	serveWorkers := flag.Int("serve-workers", 0, "daemon: local worker pool size (0 = GOMAXPROCS, negative = remote workers only)")
	storeDir := flag.String("store", "", "daemon: content-addressed failure-artifact store directory")
	reportDir := flag.String("report-dir", "", "daemon: write each finished campaign's final report JSON into this directory")
	leaseTimeout := flag.Duration("lease-timeout", campaignd.DefaultLeaseTimeout, "daemon: reissue a lease when its result is this overdue")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "daemon: SIGTERM drain bound before in-flight batches are dropped")
	workerURL := flag.String("worker", "", "run as a campaign worker process against the daemon at this URL")
	workerSlots := flag.Int("worker-slots", 1, "worker: concurrent lease executors")
	daemonURL := flag.String("daemon", "", "submit the campaign to the daemon at this URL instead of running locally")
	leaseSeeds := flag.Int("lease-seeds", 0, "daemon submit: seeds per lease (0 = batch/4); never affects the outcome")
	exploreMode := flag.Bool("explore", false, "bounded exhaustive schedule exploration of one seed (small configs only)")
	exploreDepth := flag.Int("explore-depth", explore.DefaultDepth, "explore: max branching choice points per schedule")
	exploreBudget := flag.Uint64("explore-budget", explore.DefaultBudget, "explore: max schedules (completed + pruned) before stopping")
	exploreNaive := flag.Bool("explore-naive", false, "explore: disable DPOR sleep-set pruning (naive enumeration baseline)")
	flag.Parse()

	if err := validateFlags(*exploreMode, *campaign, *serve, *workerURL, *daemonURL, *campaignFork, *campaignRebuild); err != nil {
		fmt.Fprintf(os.Stderr, "gputester: %v\n", err)
		os.Exit(2)
	}

	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()
	// exit flushes the profiles before terminating: os.Exit skips
	// deferred calls, and a failing run is exactly the one worth
	// profiling.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	var sysCfg viper.Config
	switch *caches {
	case "small":
		sysCfg = viper.SmallCacheConfig()
	case "large":
		sysCfg = viper.LargeCacheConfig()
	case "mixed":
		sysCfg = viper.MixedCacheConfig()
	case "default":
		sysCfg = viper.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown cache config %q\n", *caches)
		os.Exit(2)
	}
	sysCfg.NumCUs = *cus
	sysCfg.NumL2Slices = *slices
	switch *protocolName {
	case "wt":
	case "wb":
		sysCfg.WriteBackL2 = true
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocolName)
		os.Exit(2)
	}

	switch *bug {
	case "":
	case "lostwrite":
		sysCfg.Bugs.LostWriteRace = true
	case "nonatomic":
		sysCfg.Bugs.NonAtomicRMW = true
	case "dropack":
		sysCfg.Bugs.DropWBAckEvery = 20
	case "staleacquire":
		sysCfg.Bugs.StaleAcquire = true
	default:
		fmt.Fprintf(os.Stderr, "unknown bug %q\n", *bug)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumWavefronts = *wfs
	cfg.ThreadsPerWF = *lanes
	cfg.EpisodesPerThread = *episodes
	cfg.ActionsPerEpisode = *actions
	cfg.NumSyncVars = *syncVars
	cfg.NumDataVars = *dataVars
	cfg.RecordTrace = *axioms

	switch {
	case *serve != "":
		exit(runServe(*serve, *serveWorkers, *storeDir, *reportDir, *leaseTimeout, *drainTimeout))
	case *workerURL != "":
		exit(runWorkerMode(*workerURL, *workerSlots))
	case *daemonURL != "":
		exit(runDaemonSubmit(*daemonURL, campaignd.Spec{
			SysCfg:     sysCfg,
			TestCfg:    cfg,
			Mode:       *campaignMode,
			BaseSeed:   *seed,
			BatchSize:  *batch,
			SaturateK:  *saturateK,
			MaxSeeds:   *maxSeeds,
			Fork:       *campaignFork,
			Rebuild:    *campaignRebuild,
			TraceDepth: *traceDepth,
			LeaseSeeds: *leaseSeeds,
		}, *jsonOut))
	}

	if *exploreMode {
		runExplore(explore.Config{
			SysCfg:      sysCfg,
			TestCfg:     cfg,
			Depth:       *exploreDepth,
			Budget:      *exploreBudget,
			Prune:       !*exploreNaive,
			TraceDepth:  *traceDepth,
			ArtifactDir: *artifactDir,
		}, *jsonOut, exit)
		return
	}

	if *campaign {
		mode, err := harness.ParseCampaignMode(*campaignMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		runCampaign(harness.CampaignConfig{
			SysCfg:      sysCfg,
			TestCfg:     cfg,
			BaseSeed:    *seed,
			Workers:     *workers,
			BatchSize:   *batch,
			SaturateK:   *saturateK,
			MaxSeeds:    *maxSeeds,
			Rebuild:     *campaignRebuild,
			Fork:        *campaignFork,
			Mode:        mode,
			ArtifactDir: *artifactDir,
			TraceDepth:  *traceDepth,
		}, *protocolName, *caches, *jsonOut, *heatmap, exit)
		return
	}

	b := harness.BuildGPU(sysCfg)
	k, sys, col := b.K, b.Sys, b.Col
	var ring *trace.Ring
	if *artifactDir != "" {
		ring = harness.EnableTrace(k, *traceDepth)
	}
	tester := core.New(k, sys, cfg)
	rep := tester.Run()

	artifactPath := ""
	if *artifactDir != "" && !rep.Passed() {
		art := harness.NewGPUArtifact(sysCfg, cfg, tester, rep, ring)
		path, err := art.Write(*artifactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing replay artifact: %v\n", err)
		} else {
			artifactPath = path
		}
	}

	if *jsonOut {
		emitJSON(sysCfg, cfg, rep, col, artifactPath)
		if !rep.Passed() {
			exit(1)
		}
		return
	}

	fmt.Printf("gputester: seed=%d protocol=%s caches=%s cus=%d wfs=%d lanes=%d episodes=%d actions=%d\n",
		*seed, *protocolName, *caches, *cus, *wfs, *lanes, *episodes, *actions)
	fmt.Printf("  ops issued     %d (episodes retired %d, false-shared lines %d)\n",
		rep.OpsIssued, rep.EpisodesRetired, rep.FalseSharedLines)
	fmt.Printf("  sim ticks      %d (kernel events %d)\n", rep.SimTicks, rep.EventsExecuted)
	fmt.Printf("  wall time      %s\n", rep.WallTime)

	impsb := harness.TCCImpossibleGPUOnly()
	l2Name := "GPU-L2"
	if sysCfg.WriteBackL2 {
		l2Name = "GPU-L2WB"
		impsb = harness.TCCWBImpossible()
	}
	l1 := col.Matrix("GPU-L1")
	l2 := col.Matrix(l2Name)
	fmt.Printf("  %s\n  %s\n", l1.Summarize(nil), l2.Summarize(impsb))
	if in := l1.InactiveCells(nil); len(in) > 0 {
		fmt.Printf("  L1 inactive: %v\n", in)
	}
	if in := l2.InactiveCells(impsb); len(in) > 0 {
		fmt.Printf("  L2 inactive: %v\n", in)
	}

	if *heatmap {
		l1.RenderHeatmap(os.Stdout, nil)
		l2.RenderHeatmap(os.Stdout, impsb)
	}
	if *grid {
		l1.RenderClassGrid(os.Stdout, nil)
		l2.RenderClassGrid(os.Stdout, impsb)
	}
	if *verbose {
		fmt.Println("request latencies (ticks):")
		for _, h := range sys.Latencies().All() {
			fmt.Printf("  %s\n", h)
		}
		fmt.Println("last transactions:")
		fmt.Print(core.Dump(tester.Log().Recent(32)))
	}

	axiomViolations := 0
	if *axioms && rep.Trace != nil {
		vs := checker.Verify(rep.Trace)
		axiomViolations = len(vs)
		fmt.Printf("  axiomatic re-verification: %d ops, %d episodes, %d violation(s)\n",
			len(rep.Trace.Ops), len(rep.Trace.Episodes), len(vs))
		for i, v := range vs {
			if i == 4 {
				fmt.Printf("    ... %d more\n", len(vs)-4)
				break
			}
			fmt.Printf("    %s\n", v)
		}
	}

	if !rep.Passed() || axiomViolations > 0 {
		fmt.Printf("\nFAIL: %d bug(s) detected online, %d axiom violation(s)\n", len(rep.Failures), axiomViolations)
		for _, f := range rep.Failures {
			fmt.Println(f.TableV())
		}
		if artifactPath != "" {
			fmt.Printf("replay artifact written to %s (re-run with: replay %s)\n", artifactPath, artifactPath)
		}
		exit(1)
	}
	fmt.Println("PASS: no coherence violations detected")
}

// runExplore runs bounded exhaustive schedule exploration of one seed
// and reports the result. Exit status 1 means a violating schedule was
// found.
func runExplore(cfg explore.Config, jsonOut bool, exit func(int)) {
	res, err := explore.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gputester: explore: %v\n", err)
		exit(2)
	}

	if jsonOut {
		out := map[string]any{
			"seed":    cfg.TestCfg.Seed,
			"prune":   cfg.Prune,
			"explore": res,
			"passed":  res.Violation == nil,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if res.Violation != nil {
			exit(1)
		}
		return
	}

	fmt.Printf("gputester explore: seed=%d wfs=%d lanes=%d episodes=%d actions=%d syncvars=%d datavars=%d\n",
		cfg.TestCfg.Seed, cfg.TestCfg.NumWavefronts, cfg.TestCfg.ThreadsPerWF,
		cfg.TestCfg.EpisodesPerThread, cfg.TestCfg.ActionsPerEpisode,
		cfg.TestCfg.NumSyncVars, cfg.TestCfg.NumDataVars)
	fmt.Printf("  depth bound    %d choice points per schedule (budget %d, pruning %v)\n",
		res.Depth, res.Budget, cfg.Prune)
	fmt.Printf("  schedules      %d completed, %d abandoned as redundant, %d branches pruned\n",
		res.Schedules, res.PrunedPaths, res.PrunedBranches)
	fmt.Printf("  choice points  %d branching (depth-limited=%v, budget-exhausted=%v)\n",
		res.ChoicePoints, res.DepthLimited, res.BudgetExhausted)

	if v := res.Violation; v != nil {
		fmt.Printf("\nFAIL: violating schedule found after %d schedule(s) (schedule length %d, %d stream violation(s))\n",
			res.Schedules, len(v.Schedule), v.StreamViolations)
		if v.Failure.Kind != "" {
			fmt.Printf("  first failure: %s at tick %d: %s\n", v.Failure.Kind, v.Failure.Tick, v.Failure.Message)
		}
		if v.ArtifactPath != "" {
			fmt.Printf("replay artifact written to %s (re-run with: replay %s)\n", v.ArtifactPath, v.ArtifactPath)
		}
		exit(1)
	}
	if res.BudgetExhausted {
		fmt.Printf("\nPASS (partial): no violation in the %d schedules explored before the budget ran out\n",
			res.Schedules)
		return
	}
	fmt.Printf("\nPASS: no violation in any schedule up to depth %d (%d schedules explored)\n",
		res.Depth, res.Schedules)
}

// runCampaign executes a coverage-saturation campaign and reports the
// merged result. Exit status 1 means at least one seed found a bug.
func runCampaign(cc harness.CampaignConfig, protocolName, caches string, jsonOut, heatmap bool, exit func(int)) {
	res := harness.RunGPUCampaign(cc)

	if jsonOut {
		out := harness.CampaignReportJSON(res, cc.BaseSeed)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if len(res.Failures) > 0 {
			exit(1)
		}
		return
	}

	ctxMode := "reuse"
	if cc.Rebuild {
		ctxMode = "rebuild"
	} else if cc.Fork {
		ctxMode = "fork"
	}
	fmt.Printf("gputester campaign: mode=%s baseSeed=%d protocol=%s caches=%s batch=%d saturateK=%d maxSeeds=%d contexts=%s\n",
		res.Mode, cc.BaseSeed, protocolName, caches, cc.BatchSize, cc.SaturateK, cc.MaxSeeds, ctxMode)
	fmt.Printf("  seeds run      %d in %d batches (%.1f seeds/sec, wall %s)\n",
		res.SeedsRun, res.Batches, res.SeedsPerSec(), res.Wall.Round(time.Millisecond))
	if res.Saturated {
		fmt.Printf("  saturated      yes: %d consecutive batches added no coverage\n", cc.SaturateK)
	} else {
		fmt.Printf("  saturated      no: hit the %d-seed cap first\n", cc.MaxSeeds)
	}
	fmt.Printf("  saturation     %d cells after %d seeds (last productive seed)\n",
		res.CellsAtSaturation, res.SeedsToSaturation)
	fmt.Printf("  new cells      %v\n", res.NewCellsByBatch)
	if res.Mode != harness.CampaignUniform {
		for b, corner := range res.CornerByBatch {
			if res.NewCellsByBatch[b] == 0 {
				continue
			}
			names := res.NewCellNamesByBatch[b]
			if len(names) > 6 {
				names = append(append([]string{}, names[:6]...),
					fmt.Sprintf("... %d more", len(res.NewCellNamesByBatch[b])-6))
			}
			fmt.Printf("  batch %-3d      +%d cells  %s  (now %v)\n",
				b, res.NewCellsByBatch[b], corner, names)
		}
	}
	fmt.Printf("  ops issued     %d (kernel events %d)\n", res.TotalOps, res.TotalEvents)

	var impsb coverage.CellSet
	if cc.SysCfg.WriteBackL2 {
		impsb = harness.TCCWBImpossible()
	} else {
		impsb = harness.TCCImpossibleGPUOnly()
	}
	fmt.Printf("  %s\n  %s\n", res.UnionL1.Summarize(nil), res.UnionL2.Summarize(impsb))
	if heatmap {
		res.UnionL1.RenderHeatmap(os.Stdout, nil)
		res.UnionL2.RenderHeatmap(os.Stdout, impsb)
	}

	if len(res.Failures) > 0 {
		n := 0
		for _, sf := range res.Failures {
			n += len(sf.Failures)
		}
		fmt.Printf("\nFAIL: %d bug(s) across %d seed(s)\n", n, len(res.Failures))
		for _, sf := range res.Failures {
			for _, f := range sf.Failures {
				fmt.Printf("seed %d:\n%s\n", sf.Seed, f.TableV())
			}
			if sf.ArtifactPath != "" {
				fmt.Printf("seed %d replay artifact: %s (re-run with: replay %s)\n", sf.Seed, sf.ArtifactPath, sf.ArtifactPath)
			}
			if sf.ArtifactErr != "" {
				fmt.Printf("seed %d artifact write failed: %s\n", sf.Seed, sf.ArtifactErr)
			}
		}
		exit(1)
	}
	fmt.Println("PASS: no coherence violations detected across the campaign")
}

// runServe runs the campaign control-plane daemon until SIGINT or
// SIGTERM, then drains gracefully: in-flight batches finish (bounded
// by -drain-timeout), unfinished campaigns finalize at their merged
// prefix with reports written, workers are released with a shutdown
// status, and only then does the HTTP listener close.
func runServe(addr string, localWorkers int, storeDir, reportDir string, leaseTimeout, drainTimeout time.Duration) int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	var store *campaignd.Store
	if storeDir != "" {
		var err error
		if store, err = campaignd.OpenStore(storeDir); err != nil {
			logf("gputester: %v", err)
			return 2
		}
	}
	if localWorkers == 0 {
		localWorkers = runtime.GOMAXPROCS(0)
	}
	if localWorkers < 0 {
		localWorkers = 0
	}
	srv := campaignd.NewServer(campaignd.Options{
		LocalWorkers: localWorkers,
		Store:        store,
		LeaseTimeout: leaseTimeout,
		ReportDir:    reportDir,
		Logf:         logf,
	})
	srv.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		logf("gputester: %v", err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("gputester: serve: %v", err)
		}
	}()
	logf("gputester: campaign daemon listening on %s (local workers %d, store %q)",
		ln.Addr(), localWorkers, storeDir)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	logf("gputester: %s: draining (bound %s)", sig, drainTimeout)
	// Drain before closing the listener: workers learn about the
	// shutdown through their lease polls, and in-flight results must
	// still be accepted.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	srv.Drain(ctx)
	cancel()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	httpSrv.Shutdown(shutdownCtx)
	cancel()
	logf("gputester: daemon stopped")
	return 0
}

// runWorkerMode serves leases from a daemon until it shuts down (or
// SIGINT/SIGTERM, which finishes and posts the in-flight lease first).
func runWorkerMode(url string, slots int) int {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf("gputester: worker pid %d serving %s (%d slot(s))", os.Getpid(), url, slots)
	if err := campaignd.RunWorker(ctx, url, campaignd.WorkerOptions{Slots: slots, Logf: logf}); err != nil {
		logf("gputester: %v", err)
		return 2
	}
	return 0
}

// runDaemonSubmit submits the campaign spec to a running daemon, waits
// for completion, and reports like the local -campaign path (exit 1 on
// failures, matching it).
func runDaemonSubmit(url string, spec campaignd.Spec, jsonOut bool) int {
	client := &campaignd.Client{BaseURL: url}
	ctx := context.Background()
	id, err := client.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gputester: %v\n", err)
		return 2
	}
	if !jsonOut {
		fmt.Printf("gputester: submitted campaign %s to %s\n", id, url)
	}
	report, err := client.WaitDone(ctx, id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gputester: %v\n", err)
		return 2
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		fmt.Printf("gputester campaign %s (daemon %s): mode=%v seeds=%v batches=%v saturated=%v aborted=%v\n",
			id, url, report["mode"], report["seedsRun"], report["batches"], report["saturated"], report["aborted"])
		fmt.Printf("  new cells %v\n", report["newCellsByBatch"])
		if fs, ok := report["failures"].([]any); ok && len(fs) > 0 {
			fmt.Printf("FAIL: %d failure record(s)\n", len(fs))
			for _, f := range fs {
				fm, _ := f.(map[string]any)
				fmt.Printf("  seed %v: %v at tick %v (artifact %v)\n", fm["seed"], fm["kind"], fm["tick"], fm["artifact"])
			}
		}
	}
	if passed, _ := report["passed"].(bool); !passed {
		return 1
	}
	return 0
}

// emitJSON writes a machine-readable run report for CI consumption.
func emitJSON(sysCfg viper.Config, cfg core.Config, rep *core.Report, col *coverage.Collector, artifactPath string) {
	l2Name := "GPU-L2"
	if sysCfg.WriteBackL2 {
		l2Name = "GPU-L2WB"
	}
	failures := make([]map[string]any, 0, len(rep.Failures))
	for _, f := range rep.Failures {
		failures = append(failures, map[string]any{
			"kind":    f.Kind.String(),
			"tick":    f.Tick,
			"addr":    uint64(f.Addr),
			"message": f.Message,
		})
	}
	out := map[string]any{
		"passed":           rep.Passed(),
		"seed":             cfg.Seed,
		"opsIssued":        rep.OpsIssued,
		"opsCompleted":     rep.OpsCompleted,
		"episodesRetired":  rep.EpisodesRetired,
		"simTicks":         rep.SimTicks,
		"kernelEvents":     rep.EventsExecuted,
		"falseSharedLines": rep.FalseSharedLines,
		"wallSeconds":      rep.WallTime.Seconds(),
		"l1":               col.Matrix("GPU-L1"),
		"l2":               col.Matrix(l2Name),
		"failures":         failures,
	}
	if artifactPath != "" {
		out["artifact"] = artifactPath
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
