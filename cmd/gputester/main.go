// Command gputester runs the autonomous DRF GPU tester against a
// VIPER memory system, the core workflow of the paper.
//
// Usage:
//
//	gputester [-caches small|large|mixed|default] [-cus 8]
//	          [-wfs 16] [-lanes 4] [-episodes 10] [-actions 100]
//	          [-syncvars 10] [-datavars 100000] [-seed 1]
//	          [-bug lostwrite|nonatomic|dropack|staleacquire]
//	          [-artifact-dir DIR] [-trace-depth 4096]
//	          [-heatmap] [-grid] [-v]
//	          [-campaign] [-campaign-mode uniform|swarm|directed]
//	          [-saturate-k 3] [-max-seeds 1024]
//	          [-batch 16] [-workers 0] [-campaign-rebuild]
//	          [-campaign-fork]
//
// With -artifact-dir set the run records a bounded execution trace
// and, on any checker failure, serializes a replay artifact (JSON)
// into the directory; `replay <artifact>` re-executes it and asserts
// the failure reproduces bit-identically. The same flags apply to
// campaigns: every failing seed writes its own artifact.
//
// With -campaign the tester runs a coverage-saturation campaign
// instead of a single seed: seeds -seed, -seed+1, ... execute on a
// pool of reusable run contexts until -saturate-k consecutive batches
// of -batch seeds add no new transition coverage (or -max-seeds is
// reached). -campaign-mode selects how batches draw their test
// configuration: uniform repeats the base config, swarm deals every
// batch a random configuration corner, and directed biases corner
// sampling toward corners whose recent batches activated cold
// coverage cells. All three modes are independent of -workers.
// -campaign-fork runs each seed by restoring the system from a warm
// snapshot (copy-on-write journals) instead of Reset-scanning it —
// same outcomes, higher seeds/sec on large cache configurations.
//
// Exit status is 0 when the protocol passes, 1 when bugs are detected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"drftest/internal/checker"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/harness"
	"drftest/internal/trace"
	"drftest/internal/viper"
)

func main() {
	caches := flag.String("caches", "small", "cache sizing: small|large|mixed|default")
	protocolName := flag.String("protocol", "wt", "L2 protocol: wt (write-through VIPER) | wb (write-back VIPER-WB)")
	slices := flag.Int("l2slices", 1, "number of banked L2 slices")
	cus := flag.Int("cus", 8, "number of compute units")
	wfs := flag.Int("wfs", 16, "number of wavefronts")
	lanes := flag.Int("lanes", 4, "threads per wavefront (lockstep lanes)")
	episodes := flag.Int("episodes", 10, "episodes per wavefront thread")
	actions := flag.Int("actions", 100, "actions per episode (incl. acquire/release)")
	syncVars := flag.Int("syncvars", 10, "synchronization (atomic) locations")
	dataVars := flag.Int("datavars", 100_000, "regular data locations")
	seed := flag.Uint64("seed", 1, "random seed (same seed = identical run)")
	bug := flag.String("bug", "", "inject a protocol bug: lostwrite|nonatomic|dropack|staleacquire")
	heatmap := flag.Bool("heatmap", false, "print transition hit-frequency heat maps")
	grid := flag.Bool("grid", false, "print transition classification grids")
	verbose := flag.Bool("v", false, "print request latencies and the transaction log tail")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	axioms := flag.Bool("axiomcheck", false, "record the full trace and re-verify it with the independent axiomatic checker")
	artifactDir := flag.String("artifact-dir", "", "write a failure-replay artifact (JSON) into this directory on any detected bug")
	traceDepth := flag.Int("trace-depth", harness.DefaultTraceCapacity, "execution-trace ring capacity used with -artifact-dir")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	campaign := flag.Bool("campaign", false, "run a coverage-saturation campaign over seeds seed, seed+1, ...")
	campaignMode := flag.String("campaign-mode", "uniform", "campaign: config sampling policy: uniform|swarm|directed")
	saturateK := flag.Int("saturate-k", 3, "campaign: stop after this many consecutive batches with no new coverage (0 = run exactly max-seeds)")
	maxSeeds := flag.Int("max-seeds", harness.DefaultCampaignMaxSeeds, "campaign: hard cap on seeds run")
	batch := flag.Int("batch", 16, "campaign: seeds per batch between coverage merges")
	workers := flag.Int("workers", 0, "campaign: worker pool size (0 = GOMAXPROCS); does not affect the outcome")
	campaignRebuild := flag.Bool("campaign-rebuild", false, "campaign: rebuild the system for every seed instead of reusing run contexts (baseline mode)")
	campaignFork := flag.Bool("campaign-fork", false, "campaign: fork seeds from a warm system snapshot instead of Reset-scanning reused contexts (fast path)")
	flag.Parse()

	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()
	// exit flushes the profiles before terminating: os.Exit skips
	// deferred calls, and a failing run is exactly the one worth
	// profiling.
	exit := func(code int) {
		stopProf()
		os.Exit(code)
	}

	var sysCfg viper.Config
	switch *caches {
	case "small":
		sysCfg = viper.SmallCacheConfig()
	case "large":
		sysCfg = viper.LargeCacheConfig()
	case "mixed":
		sysCfg = viper.MixedCacheConfig()
	case "default":
		sysCfg = viper.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown cache config %q\n", *caches)
		os.Exit(2)
	}
	sysCfg.NumCUs = *cus
	sysCfg.NumL2Slices = *slices
	switch *protocolName {
	case "wt":
	case "wb":
		sysCfg.WriteBackL2 = true
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocolName)
		os.Exit(2)
	}

	switch *bug {
	case "":
	case "lostwrite":
		sysCfg.Bugs.LostWriteRace = true
	case "nonatomic":
		sysCfg.Bugs.NonAtomicRMW = true
	case "dropack":
		sysCfg.Bugs.DropWBAckEvery = 20
	case "staleacquire":
		sysCfg.Bugs.StaleAcquire = true
	default:
		fmt.Fprintf(os.Stderr, "unknown bug %q\n", *bug)
		os.Exit(2)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumWavefronts = *wfs
	cfg.ThreadsPerWF = *lanes
	cfg.EpisodesPerThread = *episodes
	cfg.ActionsPerEpisode = *actions
	cfg.NumSyncVars = *syncVars
	cfg.NumDataVars = *dataVars
	cfg.RecordTrace = *axioms

	if *campaign {
		mode, err := harness.ParseCampaignMode(*campaignMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
		if *campaignFork && *campaignRebuild {
			fmt.Fprintln(os.Stderr, "gputester: -campaign-fork and -campaign-rebuild are mutually exclusive")
			exit(2)
		}
		runCampaign(harness.CampaignConfig{
			SysCfg:      sysCfg,
			TestCfg:     cfg,
			BaseSeed:    *seed,
			Workers:     *workers,
			BatchSize:   *batch,
			SaturateK:   *saturateK,
			MaxSeeds:    *maxSeeds,
			Rebuild:     *campaignRebuild,
			Fork:        *campaignFork,
			Mode:        mode,
			ArtifactDir: *artifactDir,
			TraceDepth:  *traceDepth,
		}, *protocolName, *caches, *jsonOut, *heatmap, exit)
		return
	}

	b := harness.BuildGPU(sysCfg)
	k, sys, col := b.K, b.Sys, b.Col
	var ring *trace.Ring
	if *artifactDir != "" {
		ring = harness.EnableTrace(k, *traceDepth)
	}
	tester := core.New(k, sys, cfg)
	rep := tester.Run()

	artifactPath := ""
	if *artifactDir != "" && !rep.Passed() {
		art := harness.NewGPUArtifact(sysCfg, cfg, tester, rep, ring)
		path, err := art.Write(*artifactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing replay artifact: %v\n", err)
		} else {
			artifactPath = path
		}
	}

	if *jsonOut {
		emitJSON(sysCfg, cfg, rep, col, artifactPath)
		if !rep.Passed() {
			exit(1)
		}
		return
	}

	fmt.Printf("gputester: seed=%d protocol=%s caches=%s cus=%d wfs=%d lanes=%d episodes=%d actions=%d\n",
		*seed, *protocolName, *caches, *cus, *wfs, *lanes, *episodes, *actions)
	fmt.Printf("  ops issued     %d (episodes retired %d, false-shared lines %d)\n",
		rep.OpsIssued, rep.EpisodesRetired, rep.FalseSharedLines)
	fmt.Printf("  sim ticks      %d (kernel events %d)\n", rep.SimTicks, rep.EventsExecuted)
	fmt.Printf("  wall time      %s\n", rep.WallTime)

	impsb := harness.TCCImpossibleGPUOnly()
	l2Name := "GPU-L2"
	if sysCfg.WriteBackL2 {
		l2Name = "GPU-L2WB"
		impsb = harness.TCCWBImpossible()
	}
	l1 := col.Matrix("GPU-L1")
	l2 := col.Matrix(l2Name)
	fmt.Printf("  %s\n  %s\n", l1.Summarize(nil), l2.Summarize(impsb))
	if in := l1.InactiveCells(nil); len(in) > 0 {
		fmt.Printf("  L1 inactive: %v\n", in)
	}
	if in := l2.InactiveCells(impsb); len(in) > 0 {
		fmt.Printf("  L2 inactive: %v\n", in)
	}

	if *heatmap {
		l1.RenderHeatmap(os.Stdout, nil)
		l2.RenderHeatmap(os.Stdout, impsb)
	}
	if *grid {
		l1.RenderClassGrid(os.Stdout, nil)
		l2.RenderClassGrid(os.Stdout, impsb)
	}
	if *verbose {
		fmt.Println("request latencies (ticks):")
		for _, h := range sys.Latencies().All() {
			fmt.Printf("  %s\n", h)
		}
		fmt.Println("last transactions:")
		fmt.Print(core.Dump(tester.Log().Recent(32)))
	}

	axiomViolations := 0
	if *axioms && rep.Trace != nil {
		vs := checker.Verify(rep.Trace)
		axiomViolations = len(vs)
		fmt.Printf("  axiomatic re-verification: %d ops, %d episodes, %d violation(s)\n",
			len(rep.Trace.Ops), len(rep.Trace.Episodes), len(vs))
		for i, v := range vs {
			if i == 4 {
				fmt.Printf("    ... %d more\n", len(vs)-4)
				break
			}
			fmt.Printf("    %s\n", v)
		}
	}

	if !rep.Passed() || axiomViolations > 0 {
		fmt.Printf("\nFAIL: %d bug(s) detected online, %d axiom violation(s)\n", len(rep.Failures), axiomViolations)
		for _, f := range rep.Failures {
			fmt.Println(f.TableV())
		}
		if artifactPath != "" {
			fmt.Printf("replay artifact written to %s (re-run with: replay %s)\n", artifactPath, artifactPath)
		}
		exit(1)
	}
	fmt.Println("PASS: no coherence violations detected")
}

// runCampaign executes a coverage-saturation campaign and reports the
// merged result. Exit status 1 means at least one seed found a bug.
func runCampaign(cc harness.CampaignConfig, protocolName, caches string, jsonOut, heatmap bool, exit func(int)) {
	res := harness.RunGPUCampaign(cc)

	if jsonOut {
		failures := make([]map[string]any, 0, len(res.Failures))
		for _, sf := range res.Failures {
			for _, f := range sf.Failures {
				fj := map[string]any{
					"seed":    sf.Seed,
					"kind":    f.Kind.String(),
					"tick":    f.Tick,
					"addr":    uint64(f.Addr),
					"message": f.Message,
				}
				if sf.ArtifactPath != "" {
					fj["artifact"] = sf.ArtifactPath
				}
				if sf.ArtifactErr != "" {
					fj["artifactError"] = sf.ArtifactErr
				}
				failures = append(failures, fj)
			}
		}
		out := map[string]any{
			"passed":            len(res.Failures) == 0,
			"mode":              res.Mode.String(),
			"baseSeed":          cc.BaseSeed,
			"seedsRun":          res.SeedsRun,
			"batches":           res.Batches,
			"saturated":         res.Saturated,
			"seedsToSaturation": res.SeedsToSaturation,
			"cellsAtSaturation": res.CellsAtSaturation,
			"newCellsByBatch":   res.NewCellsByBatch,
			"cornerByBatch":     res.CornerByBatch,
			"opsIssued":         res.TotalOps,
			"kernelEvents":      res.TotalEvents,
			"wallSeconds":       res.Wall.Seconds(),
			"seedsPerSec":       res.SeedsPerSec(),
			"l1":                res.UnionL1,
			"l2":                res.UnionL2,
			"failures":          failures,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(1)
		}
		if len(res.Failures) > 0 {
			exit(1)
		}
		return
	}

	ctxMode := "reuse"
	if cc.Rebuild {
		ctxMode = "rebuild"
	} else if cc.Fork {
		ctxMode = "fork"
	}
	fmt.Printf("gputester campaign: mode=%s baseSeed=%d protocol=%s caches=%s batch=%d saturateK=%d maxSeeds=%d contexts=%s\n",
		res.Mode, cc.BaseSeed, protocolName, caches, cc.BatchSize, cc.SaturateK, cc.MaxSeeds, ctxMode)
	fmt.Printf("  seeds run      %d in %d batches (%.1f seeds/sec, wall %s)\n",
		res.SeedsRun, res.Batches, res.SeedsPerSec(), res.Wall.Round(time.Millisecond))
	if res.Saturated {
		fmt.Printf("  saturated      yes: %d consecutive batches added no coverage\n", cc.SaturateK)
	} else {
		fmt.Printf("  saturated      no: hit the %d-seed cap first\n", cc.MaxSeeds)
	}
	fmt.Printf("  saturation     %d cells after %d seeds (last productive seed)\n",
		res.CellsAtSaturation, res.SeedsToSaturation)
	fmt.Printf("  new cells      %v\n", res.NewCellsByBatch)
	if res.Mode != harness.CampaignUniform {
		for b, corner := range res.CornerByBatch {
			if res.NewCellsByBatch[b] == 0 {
				continue
			}
			names := res.NewCellNamesByBatch[b]
			if len(names) > 6 {
				names = append(append([]string{}, names[:6]...),
					fmt.Sprintf("... %d more", len(res.NewCellNamesByBatch[b])-6))
			}
			fmt.Printf("  batch %-3d      +%d cells  %s  (now %v)\n",
				b, res.NewCellsByBatch[b], corner, names)
		}
	}
	fmt.Printf("  ops issued     %d (kernel events %d)\n", res.TotalOps, res.TotalEvents)

	var impsb coverage.CellSet
	if cc.SysCfg.WriteBackL2 {
		impsb = harness.TCCWBImpossible()
	} else {
		impsb = harness.TCCImpossibleGPUOnly()
	}
	fmt.Printf("  %s\n  %s\n", res.UnionL1.Summarize(nil), res.UnionL2.Summarize(impsb))
	if heatmap {
		res.UnionL1.RenderHeatmap(os.Stdout, nil)
		res.UnionL2.RenderHeatmap(os.Stdout, impsb)
	}

	if len(res.Failures) > 0 {
		n := 0
		for _, sf := range res.Failures {
			n += len(sf.Failures)
		}
		fmt.Printf("\nFAIL: %d bug(s) across %d seed(s)\n", n, len(res.Failures))
		for _, sf := range res.Failures {
			for _, f := range sf.Failures {
				fmt.Printf("seed %d:\n%s\n", sf.Seed, f.TableV())
			}
			if sf.ArtifactPath != "" {
				fmt.Printf("seed %d replay artifact: %s (re-run with: replay %s)\n", sf.Seed, sf.ArtifactPath, sf.ArtifactPath)
			}
			if sf.ArtifactErr != "" {
				fmt.Printf("seed %d artifact write failed: %s\n", sf.Seed, sf.ArtifactErr)
			}
		}
		exit(1)
	}
	fmt.Println("PASS: no coherence violations detected across the campaign")
}

// emitJSON writes a machine-readable run report for CI consumption.
func emitJSON(sysCfg viper.Config, cfg core.Config, rep *core.Report, col *coverage.Collector, artifactPath string) {
	l2Name := "GPU-L2"
	if sysCfg.WriteBackL2 {
		l2Name = "GPU-L2WB"
	}
	failures := make([]map[string]any, 0, len(rep.Failures))
	for _, f := range rep.Failures {
		failures = append(failures, map[string]any{
			"kind":    f.Kind.String(),
			"tick":    f.Tick,
			"addr":    uint64(f.Addr),
			"message": f.Message,
		})
	}
	out := map[string]any{
		"passed":           rep.Passed(),
		"seed":             cfg.Seed,
		"opsIssued":        rep.OpsIssued,
		"opsCompleted":     rep.OpsCompleted,
		"episodesRetired":  rep.EpisodesRetired,
		"simTicks":         rep.SimTicks,
		"kernelEvents":     rep.EventsExecuted,
		"falseSharedLines": rep.FalseSharedLines,
		"wallSeconds":      rep.WallTime.Seconds(),
		"l1":               col.Matrix("GPU-L1"),
		"l2":               col.Matrix(l2Name),
		"failures":         failures,
	}
	if artifactPath != "" {
		out["artifact"] = artifactPath
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
