// Command replay re-executes a failure-replay artifact written by
// gputester or cputester (-artifact-dir) and asserts the failure
// reproduces bit-identically: same failure kind, tick, address and
// values, same op counts, same final RNG state, and the same execution
// trace tail.
//
// Usage:
//
//	replay [-trace] [-json] [-bisect] [-bisect-every N] [-store DIR]
//	       artifact.json|sha256:HASH|HASHPREFIX...
//
// With -store pointing at a campaign daemon's content-addressed
// artifact store, arguments may also be object hashes — full
// "sha256:<hex>", the bare hex, or any unique prefix (≥4 digits), like
// git abbreviated object names — resolved through the store index. A
// -bisect run with -store writes the minimized artifact back into the
// store as a new content-addressed object whose index entry records
// the source hash as provenance (minimizedFrom), instead of a loose
// "<artifact>.min.json" file.
//
// With -bisect (GPU artifacts only), the replay additionally runs a
// checkpointed pass that binary-searches the run for its first failing
// tick — the tick a value check first fails, or the tick forward
// progress ceases for a deadlock (which the deadlock report itself
// trails by up to a heartbeat period) — and writes a minimized
// companion artifact ("<artifact>.min.json") whose trace is cut to the
// reproducing suffix from that tick on. The minimized artifact is
// itself re-replayed and verified before replay reports success.
// -bisect-every overrides the checkpoint cadence in ticks (default:
// adaptive, about 64 checkpoints across the run).
//
// Exit status:
//
//	0 — every artifact reproduced (and, with -bisect, bisected and
//	    minimized to a still-reproducing artifact)
//	1 — any artifact diverged, no longer fails, or failed to bisect
//	2 — usage errors, or an artifact that cannot be loaded
//
// This closes the paper's debugging loop: the tester finds a
// coherence violation autonomously, and the artifact pins the exact
// run so the protocol designer can re-execute it — under a debugger,
// with extra logging, or after a candidate fix (where replay's exit
// status 1 with "replay found no failure" is the fix confirmation).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"drftest/internal/campaignd"
	"drftest/internal/harness"
	"drftest/internal/sim"
)

// result is one artifact's outcome, the unit of -json output.
type result struct {
	Path       string                  `json:"path"`
	Hash       string                  `json:"hash,omitempty"`
	Kind       string                  `json:"kind"`
	Seed       uint64                  `json:"seed"`
	Failure    harness.ArtifactFailure `json:"failure"`
	Reproduced bool                    `json:"reproduced"`
	// ScheduleLen is the number of recorded schedule choices pinned by
	// the artifact (0 for default-order artifacts).
	ScheduleLen int    `json:"scheduleLen,omitempty"`
	Error       string `json:"error,omitempty"`

	Bisect              *harness.BisectResult `json:"bisect,omitempty"`
	MinimizedPath       string                `json:"minimizedPath,omitempty"`
	MinimizedHash       string                `json:"minimizedHash,omitempty"`
	MinimizedReproduced bool                  `json:"minimizedReproduced,omitempty"`
}

func main() {
	showTrace := flag.Bool("trace", false, "print the artifact's execution-trace tail")
	asJSON := flag.Bool("json", false, "emit one JSON result object per artifact instead of text")
	bisect := flag.Bool("bisect", false, "bisect each artifact to its first failing tick and write a minimized companion artifact")
	bisectEvery := flag.Uint64("bisect-every", 0, "checkpoint cadence in ticks for -bisect (0 = adaptive)")
	storeDir := flag.String("store", "", "resolve artifact hashes through this content-addressed store (and write minimized artifacts back into it)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: replay [-trace] [-json] [-bisect] [-bisect-every N] [-store DIR] artifact.json|hash...")
		os.Exit(2)
	}
	var store *campaignd.Store
	if *storeDir != "" {
		var err error
		if store, err = campaignd.OpenStore(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	failed, loadFailed := 0, 0
	var results []result
	for _, arg := range flag.Args() {
		path, hash, err := resolveArg(store, arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", arg, err)
			loadFailed++
			continue
		}
		res, loadErr := replayOne(path, hash, store, *showTrace && !*asJSON, *bisect, sim.Tick(*bisectEvery), *asJSON)
		if loadErr != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, loadErr)
			loadFailed++
			continue
		}
		if res.Error != "" {
			if !*asJSON {
				fmt.Fprintf(os.Stderr, "%s: %s\n", path, res.Error)
			}
			failed++
		}
		results = append(results, *res)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	switch {
	case loadFailed > 0:
		os.Exit(2)
	case failed > 0:
		if !*asJSON {
			fmt.Printf("\n%d of %d artifact(s) did NOT reproduce\n", failed, flag.NArg())
		}
		os.Exit(1)
	}
}

// resolveArg maps one command-line argument to an artifact path: an
// existing file wins; otherwise, with -store, the argument is treated
// as an object hash or unique hash prefix and resolved through the
// store index.
func resolveArg(store *campaignd.Store, arg string) (path, hash string, err error) {
	if _, statErr := os.Stat(arg); statErr == nil {
		return arg, "", nil
	}
	if store == nil {
		return "", "", fmt.Errorf("no such file (pass -store to resolve artifact hashes)")
	}
	hash, path, err = store.Resolve(arg)
	return path, hash, err
}

// replayOne loads, replays, and (optionally) bisects one artifact.
// A load/validation error returns (nil, err) — the exit-2 class; any
// divergence after that is reported in result.Error — the exit-1
// class.
func replayOne(path, hash string, store *campaignd.Store, showTrace, bisect bool, every sim.Tick, quiet bool) (*result, error) {
	art, err := harness.LoadArtifact(path)
	if err != nil {
		return nil, err
	}
	f := art.FirstFailure()
	res := &result{Path: path, Hash: hash, Kind: art.Kind, Seed: art.Seed, Failure: f, ScheduleLen: len(art.Schedule)}
	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Printf(format, args...)
		}
	}
	logf("%s: %s artifact, seed %d, %s at tick %d (addr %#x)\n",
		path, art.Kind, art.Seed, f.Kind, f.Tick, f.Addr)
	if len(art.Schedule) > 0 {
		logf("  pinned schedule: %d recorded choice(s) (explored interleaving, replayed via script chooser)\n",
			len(art.Schedule))
	}
	if showTrace {
		logf("  trace tail (%d entries, ring capacity %d):\n", len(art.Trace), art.TraceCapacity)
		for _, e := range art.Trace {
			logf("    t=%-10d #%-8d %-12s %-24s %#x\n", e.Tick, e.Seq, e.Component, e.Label, e.Addr)
		}
	}

	if bisect {
		bi, err := harness.BisectArtifact(art, every)
		if err != nil {
			res.Error = err.Error()
			return res, nil
		}
		res.Reproduced = true
		res.Bisect = bi
		logf("  REPRODUCED: %s at tick %d, %d ops, %d kernel events — bit-identical\n",
			f.Kind, f.Tick, bi.Replayed.Ops.Completed, bi.Replayed.Ops.KernelEvents)
		logf("  BISECTED: first failing tick %d (reported at %d; %d checkpoints every %d ticks, %d fine steps from tick %d)\n",
			bi.FirstFailingTick, bi.ReportedTick, bi.Checkpoints, bi.CheckpointEvery, bi.FineSteps, bi.CoarseTick)

		min := harness.Minimize(art, filepath.Base(path), bi.FirstFailingTick)
		var minPath string
		if store != nil {
			// Store mode: the minimized artifact becomes a new
			// content-addressed object whose index entry records the
			// source object as provenance.
			data, err := min.Encode()
			if err != nil {
				res.Error = fmt.Sprintf("encoding minimized artifact: %v", err)
				return res, nil
			}
			minHash, p, _, err := store.Put(data, campaignd.ObjectMeta{
				Kind:          min.Kind,
				Seed:          min.Seed,
				Tick:          uint64(bi.FirstFailingTick),
				MinimizedFrom: hash,
			})
			if err != nil {
				res.Error = fmt.Sprintf("storing minimized artifact: %v", err)
				return res, nil
			}
			minPath = p
			res.MinimizedHash = minHash
		} else {
			var err error
			if minPath, err = harness.WriteMinimized(path, min); err != nil {
				res.Error = fmt.Sprintf("writing minimized artifact: %v", err)
				return res, nil
			}
		}
		res.MinimizedPath = minPath
		minReplayed, err := harness.Replay(min)
		if err == nil {
			err = harness.CheckReproduced(min, minReplayed)
		}
		if err != nil {
			res.Error = fmt.Sprintf("minimized artifact did not reproduce: %v", err)
			return res, nil
		}
		res.MinimizedReproduced = true
		logf("  MINIMIZED: %s (%d of %d trace entries, from tick %d) — verified reproducing\n",
			minPath, len(min.Trace), len(art.Trace), bi.FirstFailingTick)
		return res, nil
	}

	replayed, err := harness.Replay(art)
	if err == nil {
		err = harness.CheckReproduced(art, replayed)
	}
	if err != nil {
		res.Error = err.Error()
		return res, nil
	}
	res.Reproduced = true
	logf("  REPRODUCED: %s at tick %d, %d ops, %d kernel events — bit-identical\n",
		f.Kind, f.Tick, replayed.Ops.Completed, replayed.Ops.KernelEvents)
	return res, nil
}
