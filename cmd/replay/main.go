// Command replay re-executes a failure-replay artifact written by
// gputester or cputester (-artifact-dir) and asserts the failure
// reproduces bit-identically: same failure kind, tick, address and
// values, same op counts, same final RNG state, and the same execution
// trace tail.
//
// Usage:
//
//	replay [-trace] [-table] artifact.json...
//
// Exit status is 0 when every artifact reproduces, 1 when any
// diverges (or no longer fails at all), 2 on usage errors.
//
// This closes the paper's debugging loop: the tester finds a
// coherence violation autonomously, and the artifact pins the exact
// run so the protocol designer can re-execute it — under a debugger,
// with extra logging, or after a candidate fix (where replay's exit
// status 1 with "replay found no failure" is the fix confirmation).
package main

import (
	"flag"
	"fmt"
	"os"

	"drftest/internal/harness"
)

func main() {
	showTrace := flag.Bool("trace", false, "print the artifact's execution-trace tail")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: replay [-trace] artifact.json...")
		os.Exit(2)
	}

	failed := 0
	for _, path := range flag.Args() {
		if err := replayOne(path, *showTrace); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			failed++
		}
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d artifact(s) did NOT reproduce\n", failed, flag.NArg())
		os.Exit(1)
	}
}

func replayOne(path string, showTrace bool) error {
	art, err := harness.LoadArtifact(path)
	if err != nil {
		return err
	}
	f := art.FirstFailure()
	fmt.Printf("%s: %s artifact, seed %d, %s at tick %d (addr %#x)\n",
		path, art.Kind, art.Seed, f.Kind, f.Tick, f.Addr)
	if showTrace {
		fmt.Printf("  trace tail (%d entries, ring capacity %d):\n", len(art.Trace), art.TraceCapacity)
		for _, e := range art.Trace {
			fmt.Printf("    t=%-10d #%-8d %-12s %-24s %#x\n", e.Tick, e.Seq, e.Component, e.Label, e.Addr)
		}
	}

	replayed, err := harness.Replay(art)
	if err != nil {
		return err
	}
	if err := harness.CheckReproduced(art, replayed); err != nil {
		return err
	}
	fmt.Printf("  REPRODUCED: %s at tick %d, %d ops, %d kernel events — bit-identical\n",
		f.Kind, f.Tick, replayed.Ops.Completed, replayed.Ops.KernelEvents)
	return nil
}
