// Command figures regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	figures [-exp all|tableI|tableII|tableIII|tableIV|tableV|fig4|fig5|fig6|fig7|fig8|fig9|fig10|speed|casestudy|multigpu|protocolwb|specs]
//	        [-scale 0.3] [-seed 1] [-out file]
//
// scale shortens test and application lengths proportionally; 1.0 is
// the paper-scale sweep (minutes), the default 0.3 a faithful but
// faster rendition.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"drftest/internal/apps"
	"drftest/internal/core"
	"drftest/internal/directory"
	"drftest/internal/harness"
	"drftest/internal/moesi"
	"drftest/internal/protocol"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

func main() {
	exp := flag.String("exp", "all", "experiment to regenerate (comma-separated, or 'all')")
	scale := flag.Float64("scale", 0.3, "test-length scale factor (1.0 = paper scale)")
	seed := flag.Uint64("seed", 1, "master random seed")
	out := flag.String("out", "", "output file (default stdout)")
	workers := flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	flag.Parse()

	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	g := &gen{w: w, seed: *seed, scale: *scale, workers: *workers}
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	run := func(name string, fn func()) {
		if all || want[name] {
			harness.Banner(w, name)
			fn()
			fmt.Fprintln(w)
		}
	}

	run("tableI", func() { harness.RenderTableI(w) })
	run("tableII", func() { harness.RenderTableII(w) })
	run("tableIII", func() {
		harness.RenderTableIII(w, harness.GPUTesterConfigs(g.seed, g.scale), harness.CPUTesterConfigs(g.seed, g.scale))
	})
	run("tableIV", func() { harness.RenderTableIV(w) })
	run("fig4", func() { harness.RenderFig4(w) })
	run("fig5", func() { harness.RenderFig5(w, g.seed, g.scale) })
	run("fig6", func() { harness.RenderFig6(w, g.apps()) })
	run("fig7", func() { harness.RenderFig7(w, g.sweep(), g.apps()) })
	run("fig8", func() { harness.RenderFig8(w, g.sweep()) })
	run("fig9", func() { harness.RenderFig9(w, g.apps()) })
	run("fig10", func() { harness.RenderFig10(w, g.fig10()) })
	run("speed", func() { harness.SpeedComparison(w, g.sweep(), g.apps()) })
	run("tableV", func() { g.tableV() })
	run("casestudy", func() { g.caseStudy() })
	run("multigpu", func() { g.multiGPU() })
	run("protocolwb", func() { g.protocolWB() })
	run("specs", func() { dumpSpecs(w) })
	run("protocolperf", func() { g.protocolPerf() })
}

// protocolPerf is the performance-projection use of the simulator:
// the same application workloads on write-through VIPER vs VIPER-WB.
// The write-back L2 absorbs stores and releases drain at L2
// acceptance, so store/synchronization-heavy kernels finish in fewer
// simulated cycles.
func (g *gen) protocolPerf() {
	fmt.Fprintln(g.w, "Protocol performance projection: VIPER (write-through) vs VIPER-WB (write-back L2)")
	fmt.Fprintf(g.w, "  %-14s %14s %14s %9s\n", "app", "WT sim ticks", "WB sim ticks", "speedup")
	for _, name := range []string{"Square", "MatMul", "FFT", "Histogram", "Interac", "CM"} {
		prof := *apps.ByName(name)
		prof.MemOpsPerLane = int(float64(prof.MemOpsPerLane) * g.scale)
		if prof.MemOpsPerLane < 20 {
			prof.MemOpsPerLane = 20
		}
		run := func(wb bool) uint64 {
			sysCfg := viper.DefaultConfig()
			sysCfg.WriteBackL2 = wb
			k := sim.NewKernel()
			sys := viper.NewSystem(k, sysCfg, nil)
			res := apps.Run(k, sys, prof, g.seed, 16, 4, 0)
			if !res.Completed || res.Faults != 0 {
				fmt.Fprintf(os.Stderr, "protocolperf: %s (wb=%v) did not complete cleanly\n", name, wb)
			}
			return res.SimTicks
		}
		wt := run(false)
		wbt := run(true)
		fmt.Fprintf(g.w, "  %-14s %14d %14d %8.2fx\n", name, wt, wbt, float64(wt)/float64(wbt))
	}
}

// dumpSpecs prints every protocol table in the SLICC-like textual
// form (round-trippable through protocol.ParseSpec).
func dumpSpecs(w io.Writer) {
	for _, spec := range []*protocol.Spec{
		viper.NewTCPSpec(), viper.NewTCCSpec(), viper.NewTCCWBSpec(),
		moesi.NewCPUSpec(), directory.NewSpec(),
	} {
		if err := spec.Format(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		fmt.Fprintln(w)
	}
}

// gen memoizes the expensive sweeps so composite invocations share
// them.
type gen struct {
	w       io.Writer
	seed    uint64
	scale   float64
	workers int

	sweepRes *harness.GPUSweepResult
	appsRes  *harness.AppSuiteResult
	fig10Res *harness.Fig10Result
}

func (g *gen) sweep() *harness.GPUSweepResult {
	if g.sweepRes == nil {
		fmt.Fprintln(os.Stderr, "running GPU tester sweep (24 configurations)...")
		g.sweepRes = harness.RunGPUSweepParallel(harness.GPUTesterConfigs(g.seed, g.scale), g.workers)
	}
	return g.sweepRes
}

func (g *gen) apps() *harness.AppSuiteResult {
	if g.appsRes == nil {
		fmt.Fprintln(os.Stderr, "running application suite (26 workloads)...")
		g.appsRes = harness.RunAppSuiteParallel(harness.AppSuiteOptions{Seed: g.seed, Scale: g.scale}, g.workers)
	}
	return g.appsRes
}

func (g *gen) fig10() *harness.Fig10Result {
	if g.fig10Res == nil {
		fmt.Fprintln(os.Stderr, "running directory experiments (GPU tester, CPU tester sweep, apps)...")
		cfgs := harness.GPUTesterConfigs(g.seed, g.scale)
		_, gpuDir := harness.RunGPUTesterOnDirectory(cfgs[0])
		_, gpuDir2 := harness.RunGPUTesterOnDirectory(cfgs[9])
		gpuDir.Merge(gpuDir2)
		cpuRes := harness.RunCPUSweepParallel(harness.CPUTesterConfigs(g.seed+7, g.scale*0.2), g.workers)
		union := gpuDir.Clone()
		union.Merge(cpuRes.UnionDir)
		g.fig10Res = &harness.Fig10Result{
			Apps:        g.apps().UnionDir,
			CPUTester:   cpuRes.UnionDir,
			GPUTester:   gpuDir,
			TesterUnion: union,
		}
	}
	return g.fig10Res
}

// tableV reproduces the read–write inconsistency report by injecting
// the lost-write race and printing the tester's failure output.
func (g *gen) tableV() {
	fmt.Fprintln(g.w, "TABLE V. AN EXAMPLE OF A READ-WRITE INCONSISTENCY BUG")
	for seed := g.seed; seed < g.seed+32; seed++ {
		rep := runBug(viper.BugSet{LostWriteRace: true}, seed, 0)
		for _, f := range rep.Failures {
			if f.Kind == core.FailValueMismatch && f.LastReader != nil && f.LastWriter != nil {
				fmt.Fprint(g.w, f.TableV())
				return
			}
		}
	}
	fmt.Fprintln(g.w, "(no value-mismatch failure observed; try another seed)")
}

// caseStudy reproduces §V: each injected bug class is detected.
func (g *gen) caseStudy() {
	fmt.Fprintln(g.w, "Case study (§V): injected bugs and how the tester catches them")
	cases := []struct {
		name string
		bugs viper.BugSet
		ddl  uint64
	}{
		{"lost write on false-sharing race at L2", viper.BugSet{LostWriteRace: true}, 0},
		{"non-atomic read-modify-write at L2", viper.BugSet{NonAtomicRMW: true}, 0},
		{"dropped write-completion ack", viper.BugSet{DropWBAckEvery: 20}, 20_000},
		{"skipped flash-invalidate on acquire", viper.BugSet{StaleAcquire: true}, 0},
	}
	for _, c := range cases {
		detected := ""
		for seed := g.seed; seed < g.seed+8; seed++ {
			rep := runBug(c.bugs, seed, c.ddl)
			if len(rep.Failures) > 0 {
				detected = fmt.Sprintf("detected at tick %d as %s (seed %d)",
					rep.Failures[0].Tick, rep.Failures[0].Kind, seed)
				break
			}
		}
		if detected == "" {
			detected = "NOT DETECTED"
		}
		fmt.Fprintf(g.w, "  %-42s %s\n", c.name+":", detected)
	}
}

// multiGPU is the §III.B topology extension: one tester spanning two
// GPUs over a shared directory reaches the L2 probe transitions that
// are Impossible in any single-GPU system.
func (g *gen) multiGPU() {
	fmt.Fprintln(g.w, "Extension: multi-GPU testing (§III.B \"diverse topologies\")")
	gpuCfg := viper.SmallCacheConfig()
	gpuCfg.NumCUs = 4
	b := harness.BuildMultiGPU(gpuCfg, 2)
	cfg := core.DefaultConfig()
	cfg.Seed = g.seed
	cfg.NumWavefronts = 16
	cfg.EpisodesPerThread = int(50 * g.scale)
	if cfg.EpisodesPerThread < 4 {
		cfg.EpisodesPerThread = 4
	}
	cfg.ActionsPerEpisode = 60
	cfg.NumSyncVars = 8
	cfg.NumDataVars = 1024
	tester := core.NewMulti(b.K, b.GPUs, cfg)
	tester.Start()
	b.K.RunUntilIdle()
	tester.Finish()
	tester.AuditStore(b.Store)
	if fails := tester.Failures(); len(fails) > 0 {
		fmt.Fprintf(g.w, "  FAILED: %s\n", fails[0].Message)
		return
	}
	l2 := b.Col.Matrix("GPU-L2").Summarize(harness.TCCImpossibleMultiGPU())
	l1 := b.Col.Matrix("GPU-L1").Summarize(nil)
	fmt.Fprintf(g.w, "  2 GPUs x 4 CUs, one DRF tester spanning both\n")
	fmt.Fprintf(g.w, "  %s\n  %s\n", l1, l2)
	fmt.Fprintf(g.w, "  PrbInv row (Impsb in single-GPU systems) now active: I=%d V=%d IV=%d A=%d hits\n",
		b.Col.Matrix("GPU-L2").Hits[viper.TCCStateI][viper.TCCPrbInv],
		b.Col.Matrix("GPU-L2").Hits[viper.TCCStateV][viper.TCCPrbInv],
		b.Col.Matrix("GPU-L2").Hits[viper.TCCStateIV][viper.TCCPrbInv],
		b.Col.Matrix("GPU-L2").Hits[viper.TCCStateA][viper.TCCPrbInv])
}

// protocolWB demonstrates tester generality (§IV): the unchanged DRF
// tester validates the VIPER-WB write-back protocol variant and
// catches bugs injected into it.
func (g *gen) protocolWB() {
	fmt.Fprintln(g.w, "Extension: second protocol (VIPER-WB, write-back L2) under the unchanged tester")
	sysCfg := viper.SmallCacheConfig()
	sysCfg.WriteBackL2 = true
	b := harness.BuildGPU(sysCfg)
	cfg := core.DefaultConfig()
	cfg.Seed = g.seed
	cfg.NumWavefronts = 16
	cfg.EpisodesPerThread = int(50 * g.scale)
	if cfg.EpisodesPerThread < 6 {
		cfg.EpisodesPerThread = 6
	}
	cfg.ActionsPerEpisode = 60
	cfg.NumSyncVars = 8
	cfg.NumDataVars = 1024
	rep := core.New(b.K, b.Sys, cfg).Run()
	if !rep.Passed() {
		fmt.Fprintf(g.w, "  FAILED: %s\n", rep.Failures[0].Message)
		return
	}
	l2 := b.Col.Matrix("GPU-L2WB").Summarize(harness.TCCWBImpossible())
	fmt.Fprintf(g.w, "  correct VIPER-WB: PASS, %s\n", l2)

	detected := 0
	for seed := g.seed; seed < g.seed+8; seed++ {
		bugCfg := sysCfg
		bugCfg.Bugs = viper.BugSet{NonAtomicRMW: true}
		bb := harness.BuildGPU(bugCfg)
		c := core.DefaultConfig()
		c.Seed = seed
		c.NumWavefronts = 8
		c.EpisodesPerThread = 8
		c.ActionsPerEpisode = 30
		c.NumSyncVars = 4
		c.NumDataVars = 48
		c.StoreFraction = 0.6
		if r := core.New(bb.K, bb.Sys, c).Run(); !r.Passed() {
			detected++
		}
	}
	fmt.Fprintf(g.w, "  NonAtomicRMW injected into VIPER-WB: detected in %d/8 seeds\n", detected)
}

func runBug(bugs viper.BugSet, seed uint64, deadlockThreshold uint64) *core.Report {
	k := sim.NewKernel()
	sysCfg := viper.SmallCacheConfig()
	sysCfg.Bugs = bugs
	sys := viper.NewSystem(k, sysCfg, nil)
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 48
	cfg.StoreFraction = 0.6
	if deadlockThreshold != 0 {
		cfg.DeadlockThreshold = deadlockThreshold
		cfg.CheckPeriod = sim.Tick(deadlockThreshold / 4)
	}
	return core.New(k, sys, cfg).Run()
}
