// Command cputester runs the Wood-style sequentially-consistent CPU
// random tester against the MOESI caches and the shared system
// directory (§IV.C's CPU-side complement to the GPU tester).
//
// Usage:
//
//	cputester [-cpus 4] [-caches small|large] [-ops 10000]
//	          [-locations 512] [-seed 1] [-grid]
//	          [-artifact-dir DIR] [-trace-depth 4096]
//
// With -artifact-dir set the run records a bounded execution trace
// and, on any checker failure, serializes a replay artifact (JSON)
// into the directory for `replay` to re-execute.
package main

import (
	"flag"
	"fmt"
	"os"

	"drftest/internal/cputester"
	"drftest/internal/harness"
	"drftest/internal/trace"
)

func main() {
	cpus := flag.Int("cpus", 4, "number of CPU cores (2/4/8 in Table III)")
	caches := flag.String("caches", "small", "corepair cache size: small|large")
	ops := flag.Int("ops", 10_000, "operations per CPU (test length)")
	locations := flag.Int("locations", 512, "number of shared word locations")
	seed := flag.Uint64("seed", 1, "random seed")
	grid := flag.Bool("grid", false, "print directory classification grid")
	artifactDir := flag.String("artifact-dir", "", "write a failure-replay artifact (JSON) into this directory on any detected bug")
	traceDepth := flag.Int("trace-depth", harness.DefaultTraceCapacity, "execution-trace ring capacity used with -artifact-dir")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	flag.Parse()

	stopProf, err := harness.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProf()

	cacheCfg := harness.DefaultCPUCache
	if *caches == "large" {
		cacheCfg = harness.LargeCPUCache
	}

	b := harness.BuildCPU(*cpus, cacheCfg)
	var ring *trace.Ring
	if *artifactDir != "" {
		ring = harness.EnableTrace(b.K, *traceDepth)
	}
	cfg := cputester.DefaultConfig()
	cfg.Seed = *seed
	cfg.OpsPerCPU = *ops
	cfg.NumLocations = *locations
	tester := cputester.New(b.K, b.Caches, cfg)
	rep := tester.Run()

	artifactPath := ""
	if *artifactDir != "" && !rep.Passed() {
		setup := harness.CPUSetup{NumCPUs: *cpus, CacheCfg: cacheCfg, TestCfg: cfg}
		art := harness.NewCPUArtifact(setup, tester, rep, b.K.Executed(), ring)
		path, err := art.Write(*artifactDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing replay artifact: %v\n", err)
		} else {
			artifactPath = path
		}
	}

	fmt.Printf("cputester: seed=%d cpus=%d caches=%s ops/cpu=%d\n", *seed, *cpus, *caches, *ops)
	fmt.Printf("  ops completed  %d / %d\n", rep.OpsCompleted, rep.OpsIssued)
	fmt.Printf("  sim ticks      %d, wall %s\n", rep.SimTicks, rep.WallTime)
	fmt.Printf("  %s\n", b.Col.Matrix("CPU-L1").Summarize(nil))
	fmt.Printf("  %s\n", b.Col.Matrix("Directory").Summarize(nil))
	if *grid {
		b.Col.Matrix("Directory").RenderClassGrid(os.Stdout, nil)
	}

	if !rep.Passed() {
		fmt.Printf("\nFAIL: %d bug(s) detected\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Println(" ", f.Message)
		}
		if artifactPath != "" {
			fmt.Printf("replay artifact written to %s (re-run with: replay %s)\n", artifactPath, artifactPath)
		}
		stopProf()
		os.Exit(1)
	}
	fmt.Println("PASS: no coherence violations detected")
}
