// Command cputester runs the Wood-style sequentially-consistent CPU
// random tester against the MOESI caches and the shared system
// directory (§IV.C's CPU-side complement to the GPU tester).
//
// Usage:
//
//	cputester [-cpus 4] [-caches small|large] [-ops 10000]
//	          [-locations 512] [-seed 1] [-grid]
package main

import (
	"flag"
	"fmt"
	"os"

	"drftest/internal/cputester"
	"drftest/internal/harness"
)

func main() {
	cpus := flag.Int("cpus", 4, "number of CPU cores (2/4/8 in Table III)")
	caches := flag.String("caches", "small", "corepair cache size: small|large")
	ops := flag.Int("ops", 10_000, "operations per CPU (test length)")
	locations := flag.Int("locations", 512, "number of shared word locations")
	seed := flag.Uint64("seed", 1, "random seed")
	grid := flag.Bool("grid", false, "print directory classification grid")
	flag.Parse()

	cacheCfg := harness.DefaultCPUCache
	if *caches == "large" {
		cacheCfg = harness.LargeCPUCache
	}

	b := harness.BuildCPU(*cpus, cacheCfg)
	cfg := cputester.DefaultConfig()
	cfg.Seed = *seed
	cfg.OpsPerCPU = *ops
	cfg.NumLocations = *locations
	tester := cputester.New(b.K, b.Caches, cfg)
	rep := tester.Run()

	fmt.Printf("cputester: seed=%d cpus=%d caches=%s ops/cpu=%d\n", *seed, *cpus, *caches, *ops)
	fmt.Printf("  ops completed  %d / %d\n", rep.OpsCompleted, rep.OpsIssued)
	fmt.Printf("  sim ticks      %d, wall %s\n", rep.SimTicks, rep.WallTime)
	fmt.Printf("  %s\n", b.Col.Matrix("CPU-L1").Summarize(nil))
	fmt.Printf("  %s\n", b.Col.Matrix("Directory").Summarize(nil))
	if *grid {
		b.Col.Matrix("Directory").RenderClassGrid(os.Stdout, nil)
	}

	if !rep.Passed() {
		fmt.Printf("\nFAIL: %d bug(s) detected\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Println(" ", f.Message)
		}
		os.Exit(1)
	}
	fmt.Println("PASS: no coherence violations detected")
}
