// Command bughunt demonstrates the §V case studies: inject one of the
// four bug classes into the VIPER protocol and watch the tester find
// it, printing the Table V-style report and the transaction window a
// designer would debug from.
//
// Usage:
//
//	bughunt [-bug lostwrite|nonatomic|dropack|staleacquire|all] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"drftest/internal/core"
	"drftest/internal/coverage"
	"drftest/internal/sim"
	"drftest/internal/viper"
)

var bugSets = map[string]viper.BugSet{
	"lostwrite":    {LostWriteRace: true},
	"nonatomic":    {NonAtomicRMW: true},
	"dropack":      {DropWBAckEvery: 20},
	"staleacquire": {StaleAcquire: true},
}

func main() {
	bug := flag.String("bug", "all", "bug to inject: lostwrite|nonatomic|dropack|staleacquire|all")
	seed := flag.Uint64("seed", 1, "starting seed (hunts across 16 seeds)")
	flag.Parse()

	names := []string{"lostwrite", "nonatomic", "dropack", "staleacquire"}
	if *bug != "all" {
		if _, ok := bugSets[*bug]; !ok {
			fmt.Fprintf(os.Stderr, "unknown bug %q\n", *bug)
			os.Exit(2)
		}
		names = []string{*bug}
	}

	missed := 0
	for _, name := range names {
		fmt.Printf("=== injecting %s ===\n", name)
		if !hunt(name, bugSets[name], *seed) {
			fmt.Println("bug NOT detected within 16 seeds")
			missed++
		}
		fmt.Println()
	}
	if missed > 0 {
		os.Exit(1)
	}
}

func hunt(name string, bugs viper.BugSet, seed uint64) bool {
	for s := seed; s < seed+16; s++ {
		k := sim.NewKernel()
		col := coverage.NewCollector(viper.NewTCPSpec(), viper.NewTCCSpec())
		sysCfg := viper.SmallCacheConfig()
		sysCfg.Bugs = bugs
		sys := viper.NewSystem(k, sysCfg, col)

		cfg := core.DefaultConfig()
		cfg.Seed = s
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 48
		cfg.StoreFraction = 0.6
		if name == "dropack" {
			cfg.DeadlockThreshold = 20_000
			cfg.CheckPeriod = 5_000
		}
		tester := core.New(k, sys, cfg)
		rep := tester.Run()
		if rep.Passed() {
			continue
		}
		f := rep.Failures[0]
		fmt.Printf("seed %d: detected after %d ops, %d sim ticks (%s wall)\n",
			s, rep.OpsCompleted, rep.SimTicks, rep.WallTime)
		fmt.Println(f.TableV())
		return true
	}
	return false
}
