// Command apptest runs application-based testing: one or all of the
// 26 synthetic workloads on the heterogeneous system, reporting the
// coverage and cost the paper compares the tester against.
//
// Usage:
//
//	apptest [-app Square|...|all] [-scale 1.0] [-wfs 16] [-lanes 4]
//	        [-seed 1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"drftest/internal/apps"
	"drftest/internal/harness"
)

func main() {
	app := flag.String("app", "all", "application name, or 'all' for the suite")
	scale := flag.Float64("scale", 1.0, "test-length scale factor")
	wfs := flag.Int("wfs", 16, "wavefronts")
	lanes := flag.Int("lanes", 4, "threads per wavefront")
	seed := flag.Uint64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list applications and exit")
	flag.Parse()

	if *list {
		harness.RenderTableIV(os.Stdout)
		return
	}

	opts := harness.AppSuiteOptions{Seed: *seed, Scale: *scale, NumWFs: *wfs, Lanes: *lanes}
	if *app != "all" {
		p := apps.ByName(*app)
		if p == nil {
			fmt.Fprintf(os.Stderr, "unknown application %q (use -list)\n", *app)
			os.Exit(2)
		}
		opts.Profiles = []apps.Profile{*p}
	}

	res := harness.RunAppSuite(opts)
	harness.RenderFig6(os.Stdout, res)
	fmt.Println()
	harness.RenderFig9(os.Stdout, res)
	fmt.Printf("\ndirectory: %s\n", res.UnionDirSum)
	if res.Faults > 0 {
		fmt.Printf("FAIL: %d protocol fault(s) during application runs\n", res.Faults)
		os.Exit(1)
	}
	fmt.Println("all applications completed without protocol faults")
}
