package drftest_test

import (
	"strings"
	"testing"

	"drftest"
)

func TestPublicQuickstartPath(t *testing.T) {
	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 5
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 4
	cfg.ActionsPerEpisode = 30
	res := drftest.RunGPUTester(drftest.SmallCaches(), cfg)
	if !res.Report.Passed() {
		t.Fatalf("correct protocol failed: %v", res.Report.Failures[0])
	}
	if res.L1.Active == 0 || res.L2.Active == 0 {
		t.Fatal("no coverage recorded")
	}
	if res.L1Matrix == nil || res.L2Matrix == nil {
		t.Fatal("matrices not exposed")
	}
}

func TestPublicBugPath(t *testing.T) {
	detected := false
	for seed := uint64(1); seed <= 8 && !detected; seed++ {
		cfg := drftest.DefaultTesterConfig()
		cfg.Seed = seed
		cfg.NumWavefronts = 8
		cfg.EpisodesPerThread = 8
		cfg.ActionsPerEpisode = 30
		cfg.NumSyncVars = 4
		cfg.NumDataVars = 48
		cfg.StoreFraction = 0.6

		k := drftest.NewKernel()
		sysCfg := drftest.SmallCaches()
		sysCfg.Bugs = drftest.BugSet{LostWriteRace: true}
		sys, col := drftest.NewSystem(k, sysCfg)
		rep := drftest.NewTester(k, sys, cfg).Run()
		if !rep.Passed() {
			detected = true
			tv := rep.Failures[0].TableV()
			if !strings.Contains(tv, "Thread ID") {
				t.Fatalf("TableV output malformed:\n%s", tv)
			}
		}
		_ = col
	}
	if !detected {
		t.Fatal("public bug-injection path never detected the bug")
	}
}

func TestPublicCPUAndHeteroPaths(t *testing.T) {
	cpuCfg := drftest.DefaultCPUTesterConfig()
	cpuCfg.OpsPerCPU = 800
	cpuRes := drftest.RunCPUTester(4, cpuCfg)
	if !cpuRes.Report.Passed() {
		t.Fatalf("CPU tester failed: %v", cpuRes.Report.Failures[0])
	}
	if cpuRes.CPUL1.Active == 0 || cpuRes.Directory == nil {
		t.Fatal("CPU coverage not exposed")
	}

	gCfg := drftest.DefaultTesterConfig()
	gCfg.NumWavefronts = 4
	gCfg.EpisodesPerThread = 3
	gCfg.ActionsPerEpisode = 20
	hRes := drftest.RunGPUTesterHetero(drftest.SmallCaches(), gCfg)
	if !hRes.Report.Passed() {
		t.Fatalf("hetero GPU tester failed: %v", hRes.Report.Failures[0])
	}
	union := hRes.Directory.Clone()
	union.Merge(cpuRes.Directory)
	if got := union.Summarize(nil).Active; got <= cpuRes.Directory.Summarize(nil).Active {
		t.Fatalf("union (%d) should exceed CPU tester alone", got)
	}
}

func TestPublicImpossibleMask(t *testing.T) {
	mask := drftest.L2ImpossibleGPUOnly()
	if len(mask) == 0 {
		t.Fatal("empty Impsb mask")
	}
}

func TestPublicMultiGPUPath(t *testing.T) {
	sysCfg := drftest.SmallCaches()
	sysCfg.NumCUs = 2
	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 4
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 4
	cfg.ActionsPerEpisode = 30
	cfg.NumDataVars = 256
	res := drftest.RunMultiGPUTester(2, sysCfg, cfg)
	if !res.Report.Passed() {
		t.Fatalf("multi-GPU façade run failed: %v", res.Report.Failures[0])
	}
	if res.L2.Active == 0 {
		t.Fatal("no L2 coverage from multi-GPU run")
	}
}

func TestPublicWriteBackProtocol(t *testing.T) {
	sysCfg := drftest.SmallCaches()
	sysCfg.WriteBackL2 = true
	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 2
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 4
	cfg.ActionsPerEpisode = 30
	cfg.NumDataVars = 256
	res := drftest.RunGPUTester(sysCfg, cfg)
	if !res.Report.Passed() {
		t.Fatalf("VIPER-WB façade run failed: %v", res.Report.Failures[0])
	}
}
