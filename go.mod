module drftest

go 1.22
