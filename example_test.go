package drftest_test

import (
	"fmt"

	"drftest"
)

// ExampleRunGPUTester shows the one-call testing flow: build a system,
// run the autonomous DRF tester, read coverage. Deterministic in the
// seed.
func ExampleRunGPUTester() {
	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 42
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 5
	cfg.ActionsPerEpisode = 40
	cfg.NumDataVars = 1024

	res := drftest.RunGPUTester(drftest.SmallCaches(), cfg)
	fmt.Println("passed:", res.Report.Passed())
	fmt.Printf("ops: %d\n", res.Report.OpsIssued)
	fmt.Printf("L1 coverage: %.1f%%\n", 100*res.L1.Coverage())
	fmt.Printf("L2 coverage: %.1f%%\n", 100*res.L2.Coverage())
	// Output:
	// passed: true
	// ops: 6400
	// L1 coverage: 83.3%
	// L2 coverage: 100.0%
}

// ExampleBugSet shows the case-study flow: inject a protocol bug and
// let the tester find it; the failure carries the paper's Table V
// debugging context.
func ExampleBugSet() {
	cfg := drftest.DefaultTesterConfig()
	cfg.Seed = 1
	cfg.NumWavefronts = 8
	cfg.EpisodesPerThread = 8
	cfg.ActionsPerEpisode = 30
	cfg.NumSyncVars = 4
	cfg.NumDataVars = 48
	cfg.StoreFraction = 0.6

	k := drftest.NewKernel()
	sysCfg := drftest.SmallCaches()
	sysCfg.Bugs = drftest.BugSet{LostWriteRace: true}
	sys, _ := drftest.NewSystem(k, sysCfg)
	rep := drftest.NewTester(k, sys, cfg).Run()

	f := rep.Failures[0]
	fmt.Println("detected:", f.Kind)
	fmt.Println("has last writer:", f.LastWriter != nil)
	// Output:
	// detected: value-mismatch
	// has last writer: true
}
